"""Systematic finite-difference gradcheck across the layer matrix.

Every differentiable layer is exercised inside a small network against
central finite differences — the single most important invariant of the
substrate, since a silently wrong gradient would corrupt every
experiment downstream while still "learning something".
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from tests.helpers import model_gradcheck


def _image_input(rng):
    return rng.normal(size=(3, 2, 8, 8))


def _vector_input(rng):
    return rng.normal(size=(5, 12))


def _sequence_input(rng):
    return rng.integers(0, 9, size=(3, 5))


LAYER_CASES = [
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Conv2d(2, 3, 3, padding=1, rng=rng), nn.ReLU(), nn.AvgPool2d(2),
            nn.Flatten(), nn.Linear(3 * 4 * 4, 4, rng=rng),
        ),
        _image_input, "conv-avgpool", id="conv-avgpool",
    ),
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Conv2d(2, 2, 3, stride=2, rng=rng), nn.LeakyReLU(0.1),
            nn.Flatten(), nn.Linear(2 * 3 * 3, 4, rng=rng),
        ),
        _image_input, "strided-conv", id="strided-conv",
    ),
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Linear(12, 8, rng=rng), nn.Sigmoid(), nn.Linear(8, 4, rng=rng)
        ),
        _vector_input, "sigmoid-mlp", id="sigmoid-mlp",
    ),
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Linear(12, 8, rng=rng), nn.LayerNorm(8), nn.Tanh(),
            nn.Linear(8, 4, rng=rng),
        ),
        _vector_input, "layernorm", id="layernorm",
    ),
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Embedding(9, 4, rng=rng), nn.LSTM(4, 5, num_layers=1, rng=rng),
            nn.LastTimestep(), nn.Linear(5, 4, rng=rng),
        ),
        _sequence_input, "lstm", id="lstm",
    ),
    pytest.param(
        lambda rng: nn.Sequential(
            nn.Embedding(9, 4, rng=rng), nn.GRU(4, 5, num_layers=1, rng=rng),
            nn.LastTimestep(), nn.Linear(5, 4, rng=rng),
        ),
        _sequence_input, "gru", id="gru",
    ),
]


@pytest.mark.parametrize("factory,input_fn,label", LAYER_CASES)
def test_cross_entropy_gradcheck(rng, factory, input_fn, label):
    model = factory(rng)
    x = input_fn(rng)
    y = rng.integers(0, 4, x.shape[0])
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(x), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=10, atol=1e-4)


@pytest.mark.parametrize("factory,input_fn,label", LAYER_CASES)
def test_cross_entropy_gradcheck_float32(rng, factory, input_fn, label):
    """The same layer matrix under the float32 dtype policy.

    Finite differences in single precision need a bigger step (a 1e-6
    bump vanishes in rounding) and looser tolerances — this checks the
    float32 kernels compute the *right* gradients, not that they match
    float64 precision.
    """
    with nn.default_dtype("float32"):
        model = factory(rng)
    x = input_fn(rng)
    if np.issubdtype(np.asarray(x).dtype, np.floating):
        x = x.astype(np.float32)
    y = rng.integers(0, 4, x.shape[0])
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(x), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=10, eps=1e-3, atol=5e-2)


@pytest.mark.parametrize("factory,input_fn,label", LAYER_CASES[:4])
def test_mse_gradcheck(rng, factory, input_fn, label):
    model = factory(rng)
    x = input_fn(rng)
    target = rng.normal(size=(x.shape[0], 4))
    loss_fn = MeanSquaredError()

    def closure():
        loss = loss_fn.forward(model(x), target)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=10, atol=1e-4)


def test_gradients_accumulate_across_objectives(rng):
    """Backward twice (two objective terms) sums gradients exactly."""
    model = nn.Sequential(nn.Linear(6, 4, rng=rng), nn.Tanh(), nn.Linear(4, 2, rng=rng))
    x = rng.normal(size=(4, 6))
    target = rng.normal(size=(4, 2))
    loss_fn = MeanSquaredError()

    loss_fn.forward(model(x), target)
    model.zero_grad()
    model.backward(loss_fn.backward())
    from repro.nn.serialization import get_flat_grads

    single = get_flat_grads(model)
    loss_fn.forward(model(x), target)
    model.backward(loss_fn.backward())
    np.testing.assert_allclose(get_flat_grads(model), 2 * single)


@pytest.mark.parametrize("case", range(12))
def test_im2col_col2im_adjointness_on_random_shapes(case):
    """col2im is the exact adjoint of im2col:
    <im2col(x), y> == <x, col2im(y)> for every x and y.

    This is the algebraic fact the convolution backward pass rests on;
    shapes are drawn from a seeded stdlib generator so failures replay.
    """
    import random

    from repro.nn.conv import col2im, im2col

    gen = random.Random(6000 + case)
    batch = gen.randint(1, 3)
    channels = gen.randint(1, 3)
    kernel = gen.randint(1, 4)
    stride = gen.randint(1, 3)
    padding = gen.randint(0, 2)
    # Keep the spatial extent valid for the sampled kernel/padding.
    min_side = max(1, kernel - 2 * padding)
    height = gen.randint(min_side, min_side + 5)
    width = gen.randint(min_side, min_side + 5)

    data = np.random.default_rng(7000 + case)
    x = data.normal(size=(batch, channels, height, width))
    cols, out_h, out_w = im2col(x, kernel, stride, padding)
    y = data.normal(size=cols.shape)

    lhs = float((cols * y).sum())
    back = col2im(y, x.shape, kernel, stride, padding, out_h, out_w)
    rhs = float((x * back).sum())
    assert abs(lhs - rhs) < 1e-9 * max(1.0, abs(lhs))
