"""The global dtype policy: float32 training without silent upcasts.

Covers the policy primitives (:mod:`repro.nn.dtype`), dtype threading
through parameters / initializers / layers / serialization, the
federated ``FLConfig(dtype=...)`` plumbing, and ``Module.free_buffers``.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.dtype import astype_default
from repro.nn.initializers import glorot_uniform
from repro.nn.module import Parameter
from repro.nn.serialization import get_flat_grads, get_flat_params, set_flat_params


# -- policy primitives ----------------------------------------------------------


def test_default_policy_is_float64():
    assert nn.get_default_dtype() == np.float64


def test_set_and_restore_default_dtype():
    nn.set_default_dtype("float32")
    try:
        assert nn.get_default_dtype() == np.float32
    finally:
        nn.set_default_dtype("float64")
    assert nn.get_default_dtype() == np.float64


def test_default_dtype_context_restores_on_exit_and_error():
    with nn.default_dtype("float32"):
        assert nn.get_default_dtype() == np.float32
        with nn.default_dtype(np.float64):
            assert nn.get_default_dtype() == np.float64
        assert nn.get_default_dtype() == np.float32
    assert nn.get_default_dtype() == np.float64

    with pytest.raises(RuntimeError):
        with nn.default_dtype("float32"):
            raise RuntimeError("boom")
    assert nn.get_default_dtype() == np.float64


def test_invalid_dtype_rejected():
    with pytest.raises(Exception):
        nn.set_default_dtype("int32")


def test_astype_default_casts_floats_and_passes_ints():
    with nn.default_dtype("float32"):
        assert astype_default(np.zeros(3)).dtype == np.float32
        tokens = np.arange(4, dtype=np.int64)
        assert astype_default(tokens).dtype == np.int64


# -- parameters and initializers -------------------------------------------------


def test_parameter_casts_to_policy_dtype():
    with nn.default_dtype("float32"):
        p = Parameter(np.zeros((2, 3)))
    assert p.data.dtype == np.float32
    assert p.grad.dtype == np.float32


def test_initializer_stream_identical_across_policies():
    """Initializers sample in float64 and cast once, so a float32 model
    starts at exactly the float32 cast of the float64 model."""
    w64 = glorot_uniform(np.random.default_rng(9), (6, 5), 6, 5)
    with nn.default_dtype("float32"):
        w32 = glorot_uniform(np.random.default_rng(9), (6, 5), 6, 5)
    assert w64.dtype == np.float64
    assert w32.dtype == np.float32
    np.testing.assert_array_equal(w32, w64.astype(np.float32))


# -- layers stay in float32 end to end -------------------------------------------


def _f32_cnn():
    r = np.random.default_rng(4)
    return nn.Sequential(
        nn.Conv2d(1, 3, 3, padding=1, rng=r), nn.ReLU(), nn.MaxPool2d(2),
        nn.Flatten(), nn.Linear(3 * 4 * 4, 4, rng=r),
    )


@pytest.mark.parametrize(
    "build,make_input",
    [
        (
            _f32_cnn,
            lambda rng: rng.normal(size=(2, 1, 8, 8)).astype(np.float32),
        ),
        (
            lambda: nn.Sequential(
                nn.Linear(6, 5, rng=np.random.default_rng(1)),
                nn.Sigmoid(),
                nn.Dropout(0.5, seed=2),
                nn.Linear(5, 3, rng=np.random.default_rng(3)),
            ),
            lambda rng: rng.normal(size=(4, 6)).astype(np.float32),
        ),
        (
            lambda: nn.Sequential(
                nn.Embedding(11, 4, rng=np.random.default_rng(1)),
                nn.LSTM(4, 5, num_layers=2, rng=np.random.default_rng(2)),
                nn.LastTimestep(),
                nn.Linear(5, 3, rng=np.random.default_rng(3)),
            ),
            lambda rng: rng.integers(0, 11, size=(3, 6)),
        ),
        (
            lambda: nn.Sequential(
                nn.Embedding(11, 4, rng=np.random.default_rng(1)),
                nn.GRU(4, 5, num_layers=1, rng=np.random.default_rng(2)),
                nn.LastTimestep(),
                nn.Linear(5, 3, rng=np.random.default_rng(3)),
            ),
            lambda rng: rng.integers(0, 11, size=(3, 6)),
        ),
    ],
    ids=["cnn", "mlp-dropout", "lstm", "gru"],
)
def test_float32_model_never_upcasts(rng, build, make_input):
    with nn.default_dtype("float32"):
        model = build()
    x = make_input(rng)
    out = model(x)
    assert out.dtype == np.float32
    grad_in = model.backward(np.ones_like(out))
    if np.issubdtype(x.dtype, np.floating):
        assert grad_in.dtype == np.float32
    for p in model.parameters():
        assert p.data.dtype == np.float32, p.name
        assert p.grad.dtype == np.float32, p.name


def test_lstm_cell_state_follows_input_dtype():
    with nn.default_dtype("float32"):
        cell = nn.LSTMCell(3, 4, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(2, 5, 3)).astype(np.float32)
    hs = cell.forward(x)
    assert hs.dtype == np.float32
    assert all(
        arr.dtype == np.float32
        for arr in cell._cache.values()
    )


# -- serialization ---------------------------------------------------------------


def test_flat_params_round_trip_preserves_float32():
    with nn.default_dtype("float32"):
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
    flat = get_flat_params(model)
    assert flat.dtype == np.float32
    set_flat_params(model, flat * 2.0)
    assert model.parameters()[0].data.dtype == np.float32
    assert get_flat_grads(model).dtype == np.float32


# -- SplitModel casts incoming data ---------------------------------------------


def test_split_model_casts_input_to_policy():
    from repro.models import build_mlp

    with nn.default_dtype("float32"):
        model = build_mlp(6, 3, np.random.default_rng(0), (5,), feature_dim=4)
        out = model(np.random.default_rng(1).normal(size=(2, 6)))  # float64 in
        assert out.dtype == np.float32


# -- federated plumbing ----------------------------------------------------------


def test_flconfig_rejects_bad_dtype():
    from repro.exceptions import ConfigError
    from repro.fl.config import FLConfig

    with pytest.raises(ConfigError):
        FLConfig(rounds=1, dtype="float16")


def test_run_federated_float32_smoke(toy_federation, fast_config):
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated
    from tests.helpers import tiny_model_fn

    config = fast_config.with_updates(rounds=2, dtype="float32")
    algorithm = make_algorithm("fedavg")
    history = run_federated(
        algorithm, toy_federation, tiny_model_fn(toy_federation), config
    )
    assert algorithm.global_params.dtype == np.float32
    assert len(history.records) == 2
    # The policy is scoped to the run, not leaked into the process.
    assert nn.get_default_dtype() == np.float64


# -- free_buffers ----------------------------------------------------------------


def test_free_buffers_drops_caches_and_next_step_works(rng):
    model = nn.Sequential(
        nn.Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(0)),
        nn.ReLU(), nn.Flatten(),
        nn.Linear(2 * 64, 3, rng=np.random.default_rng(1)),
    )
    x = rng.normal(size=(2, 1, 8, 8))
    out = model(x)
    model.backward(np.ones_like(out))
    model.free_buffers()
    conv, relu, _, linear = model.layers
    assert conv._cols is None
    assert relu._mask is None
    assert linear._x is None
    # backward without a fresh forward raises, exactly like a new module
    with pytest.raises(RuntimeError):
        model.backward(np.ones_like(out))
    # and the next forward/backward round-trips fine
    out2 = model(x)
    model.backward(np.ones_like(out2))
    np.testing.assert_array_equal(out, out2)


def test_free_buffers_on_recurrent_stack(rng):
    with nn.default_dtype("float32"):
        model = nn.Sequential(
            nn.Embedding(7, 3, rng=np.random.default_rng(0)),
            nn.LSTM(3, 4, num_layers=2, rng=np.random.default_rng(1)),
            nn.LastTimestep(),
        )
    tokens = rng.integers(0, 7, size=(2, 5))
    model(tokens)
    model.free_buffers()
    for cell in model.layers[1].cells:
        assert cell._cache is None
