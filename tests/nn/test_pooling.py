"""Pooling layer tests."""

import numpy as np
import pytest

from repro import nn
from tests.helpers import model_gradcheck
from repro.nn.losses import MeanSquaredError


def test_maxpool_forward_values():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = nn.MaxPool2d(2)(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_avgpool_forward_values():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = nn.AvgPool2d(2)(x)
    np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_maxpool_backward_routes_to_max():
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    layer = nn.MaxPool2d(2)
    layer(x)
    grad = layer.backward(np.array([[[[10.0]]]]))
    np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 10]])


def test_maxpool_tie_splits_gradient():
    x = np.ones((1, 1, 2, 2))
    layer = nn.MaxPool2d(2)
    layer(x)
    grad = layer.backward(np.array([[[[8.0]]]]))
    np.testing.assert_array_equal(grad[0, 0], [[2, 2], [2, 2]])


def test_avgpool_backward_spreads_evenly():
    layer = nn.AvgPool2d(2)
    layer(np.zeros((1, 1, 2, 2)))
    grad = layer.backward(np.array([[[[4.0]]]]))
    np.testing.assert_array_equal(grad[0, 0], [[1, 1], [1, 1]])


@pytest.mark.parametrize("cls", [nn.MaxPool2d, nn.AvgPool2d])
def test_indivisible_dims_raise(cls):
    with pytest.raises(ValueError):
        cls(2)(np.zeros((1, 1, 5, 4)))


@pytest.mark.parametrize("cls", [nn.MaxPool2d, nn.AvgPool2d])
def test_backward_before_forward_raises(cls):
    with pytest.raises(RuntimeError):
        cls(2).backward(np.zeros((1, 1, 2, 2)))


@pytest.mark.parametrize("cls", [nn.MaxPool2d, nn.AvgPool2d])
def test_gradcheck_pooling(rng, cls):
    model = nn.Sequential(
        nn.Conv2d(1, 2, 3, padding=1, rng=rng), cls(2), nn.Flatten(),
        nn.Linear(2 * 3 * 3, 2, rng=rng),
    )
    x = rng.normal(size=(3, 1, 6, 6))
    target = rng.normal(size=(3, 2))
    loss_fn = MeanSquaredError()

    def closure():
        loss = loss_fn.forward(model(x), target)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=8)
