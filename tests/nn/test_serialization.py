"""Flat-parameter serialization tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (
    add_flat_to_grads,
    get_flat_grads,
    get_flat_params,
    load_params,
    num_params,
    save_params,
    set_flat_params,
)


def _model(rng):
    return nn.Sequential(nn.Linear(4, 3, rng=rng), nn.ReLU(), nn.Linear(3, 2, rng=rng))


def test_num_params(rng):
    model = _model(rng)
    assert num_params(model) == 4 * 3 + 3 + 3 * 2 + 2


def test_roundtrip_preserves_values(rng):
    model = _model(rng)
    flat = get_flat_params(model)
    x = rng.normal(size=(2, 4))
    before = model(x)
    set_flat_params(model, np.zeros_like(flat))
    set_flat_params(model, flat)
    np.testing.assert_array_equal(model(x), before)


def test_flat_params_returns_copy(rng):
    model = _model(rng)
    flat = get_flat_params(model)
    flat[...] = 0.0
    assert not np.all(get_flat_params(model) == 0.0)


def test_set_flat_params_size_mismatch(rng):
    model = _model(rng)
    with pytest.raises(ValueError):
        set_flat_params(model, np.zeros(3))


def test_flat_grads_layout_matches_params(rng):
    model = _model(rng)
    x = rng.normal(size=(2, 4))
    loss_fn = nn.MeanSquaredError()
    loss_fn.forward(model(x), np.zeros((2, 2)))
    model.zero_grad()
    model.backward(loss_fn.backward())
    grads = get_flat_grads(model)
    assert grads.shape == get_flat_params(model).shape
    assert np.any(grads != 0.0)


def test_add_flat_to_grads(rng):
    model = _model(rng)
    model.zero_grad()
    extra = np.arange(num_params(model), dtype=np.float64)
    add_flat_to_grads(model, extra)
    np.testing.assert_array_equal(get_flat_grads(model), extra)
    add_flat_to_grads(model, extra)
    np.testing.assert_array_equal(get_flat_grads(model), 2 * extra)
    with pytest.raises(ValueError):
        add_flat_to_grads(model, np.zeros(1))


def test_save_load_roundtrip(rng, tmp_path):
    model = _model(rng)
    path = str(tmp_path / "ckpt.npz")
    save_params(model, path)
    other = _model(np.random.default_rng(999))
    load_params(other, path)
    np.testing.assert_array_equal(get_flat_params(other), get_flat_params(model))


def test_load_shape_mismatch_raises(rng, tmp_path):
    model = _model(rng)
    path = str(tmp_path / "ckpt.npz")
    save_params(model, path)
    wrong = nn.Sequential(nn.Linear(5, 3, rng=rng))
    with pytest.raises(ValueError):
        load_params(wrong, path)


def test_empty_model_serializes():
    model = nn.Sequential(nn.ReLU())
    assert get_flat_params(model).size == 0
    assert get_flat_grads(model).size == 0
    set_flat_params(model, np.zeros(0))
