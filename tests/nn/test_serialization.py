"""Flat-parameter serialization tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (
    add_flat_to_grads,
    get_flat_grads,
    get_flat_params,
    load_params,
    num_params,
    save_params,
    set_flat_params,
)


def _model(rng):
    return nn.Sequential(nn.Linear(4, 3, rng=rng), nn.ReLU(), nn.Linear(3, 2, rng=rng))


def test_num_params(rng):
    model = _model(rng)
    assert num_params(model) == 4 * 3 + 3 + 3 * 2 + 2


def test_roundtrip_preserves_values(rng):
    model = _model(rng)
    flat = get_flat_params(model)
    x = rng.normal(size=(2, 4))
    before = model(x)
    set_flat_params(model, np.zeros_like(flat))
    set_flat_params(model, flat)
    np.testing.assert_array_equal(model(x), before)


def test_flat_params_returns_copy(rng):
    model = _model(rng)
    flat = get_flat_params(model)
    flat[...] = 0.0
    assert not np.all(get_flat_params(model) == 0.0)


def test_set_flat_params_size_mismatch(rng):
    model = _model(rng)
    with pytest.raises(ValueError):
        set_flat_params(model, np.zeros(3))


def test_flat_grads_layout_matches_params(rng):
    model = _model(rng)
    x = rng.normal(size=(2, 4))
    loss_fn = nn.MeanSquaredError()
    loss_fn.forward(model(x), np.zeros((2, 2)))
    model.zero_grad()
    model.backward(loss_fn.backward())
    grads = get_flat_grads(model)
    assert grads.shape == get_flat_params(model).shape
    assert np.any(grads != 0.0)


def test_add_flat_to_grads(rng):
    model = _model(rng)
    model.zero_grad()
    extra = np.arange(num_params(model), dtype=np.float64)
    add_flat_to_grads(model, extra)
    np.testing.assert_array_equal(get_flat_grads(model), extra)
    add_flat_to_grads(model, extra)
    np.testing.assert_array_equal(get_flat_grads(model), 2 * extra)
    with pytest.raises(ValueError):
        add_flat_to_grads(model, np.zeros(1))


def test_save_load_roundtrip(rng, tmp_path):
    model = _model(rng)
    path = str(tmp_path / "ckpt.npz")
    save_params(model, path)
    other = _model(np.random.default_rng(999))
    load_params(other, path)
    np.testing.assert_array_equal(get_flat_params(other), get_flat_params(model))


def test_load_shape_mismatch_raises(rng, tmp_path):
    model = _model(rng)
    path = str(tmp_path / "ckpt.npz")
    save_params(model, path)
    wrong = nn.Sequential(nn.Linear(5, 3, rng=rng))
    with pytest.raises(ValueError):
        load_params(wrong, path)


def test_empty_model_serializes():
    model = nn.Sequential(nn.ReLU())
    assert get_flat_params(model).size == 0
    assert get_flat_grads(model).size == 0
    set_flat_params(model, np.zeros(0))


# -- training-state round-trip (save_state / load_state) --------------------------


def _train_steps(model, optimizer, rng, steps=3):
    loss_fn = nn.MeanSquaredError()
    for _ in range(steps):
        x = rng.normal(size=(4, 4))
        loss_fn.forward(model(x), np.zeros((4, 2)))
        model.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step()


def _optimizer(kind, model):
    from repro.nn.optim import SGD, Adam, RMSProp

    params = model.parameters()
    if kind == "sgd":
        return SGD(params, lr=0.05, momentum=0.9)
    if kind == "rmsprop":
        return RMSProp(params, lr=0.01)
    return Adam(params, lr=0.01)


@pytest.mark.parametrize("kind", ["sgd", "rmsprop", "adam"])
def test_save_state_round_trips_optimizer(kind, rng, tmp_path):
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    model = _model(rng)
    optimizer = _optimizer(kind, model)
    _train_steps(model, optimizer, rng)
    save_state(path, model, optimizer)

    fresh_rng = np.random.default_rng(999)
    other = _model(fresh_rng)
    other_opt = _optimizer(kind, other)
    load_state(path, other, other_opt)

    np.testing.assert_array_equal(get_flat_params(other), get_flat_params(model))
    assert other_opt.step_count == optimizer.step_count
    for slot in optimizer._slots:
        for a, b in zip(getattr(optimizer, slot), getattr(other_opt, slot)):
            np.testing.assert_array_equal(a, b)

    # The real contract: further training continues bit-identically.
    step_rng = np.random.default_rng(7)
    _train_steps(model, optimizer, step_rng)
    step_rng = np.random.default_rng(7)
    _train_steps(other, other_opt, step_rng)
    np.testing.assert_array_equal(get_flat_params(other), get_flat_params(model))


def test_save_state_without_optimizer_is_params_plus_tag(rng, tmp_path):
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    model = _model(rng)
    save_state(path, model)
    other = _model(np.random.default_rng(999))
    load_state(path, other)
    np.testing.assert_array_equal(get_flat_params(other), get_flat_params(model))


def test_load_state_refuses_dtype_policy_mismatch(rng, tmp_path):
    from repro.exceptions import CheckpointMismatchError
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    save_state(path, _model(rng))  # written under the float64 default
    with nn.default_dtype("float32"):
        target = _model(np.random.default_rng(1))
        before = get_flat_params(target)
        with pytest.raises(CheckpointMismatchError, match="float64"):
            load_state(path, target)
        # No silent cast, no partial write.
        np.testing.assert_array_equal(get_flat_params(target), before)


def test_load_state_refuses_optimizer_class_mismatch(rng, tmp_path):
    from repro.exceptions import CheckpointMismatchError
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    model = _model(rng)
    sgd = _optimizer("sgd", model)
    _train_steps(model, sgd, rng)
    save_state(path, model, sgd)

    other = _model(np.random.default_rng(2))
    adam = _optimizer("adam", other)
    before = get_flat_params(other)
    with pytest.raises(CheckpointMismatchError, match="SGD"):
        load_state(path, other, adam)
    np.testing.assert_array_equal(get_flat_params(other), before)
    assert adam.step_count == 0


def test_load_state_rejects_plain_param_files(rng, tmp_path):
    from repro.nn.serialization import load_state

    path = str(tmp_path / "params.npz")
    save_params(_model(rng), path)
    with pytest.raises(ValueError, match="dtype tag"):
        load_state(path, _model(rng))


def test_load_state_without_optimizer_state_raises(rng, tmp_path):
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    model = _model(rng)
    save_state(path, model)  # no optimizer section
    with pytest.raises(ValueError, match="no optimizer state"):
        load_state(path, _model(np.random.default_rng(3)), _optimizer("sgd", model))


def test_load_state_shape_mismatch_leaves_model_untouched(rng, tmp_path):
    from repro.nn.serialization import load_state, save_state

    path = str(tmp_path / "state.npz")
    save_state(path, _model(rng))
    wrong = nn.Sequential(nn.Linear(5, 3, rng=rng))
    before = get_flat_params(wrong)
    with pytest.raises(ValueError, match="shape mismatch"):
        load_state(path, wrong)
    np.testing.assert_array_equal(get_flat_params(wrong), before)
