"""Optimizer and schedule tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import make_optimizer


def _param(value):
    return Parameter(np.array([value], dtype=np.float64))


def test_sgd_single_step():
    p = _param(1.0)
    p.grad[...] = 0.5
    nn.SGD([p], lr=0.1).step()
    np.testing.assert_allclose(p.data, [0.95])


def test_sgd_momentum_accumulates():
    p = _param(0.0)
    opt = nn.SGD([p], lr=1.0, momentum=0.9)
    p.grad[...] = 1.0
    opt.step()  # v=1 -> p=-1
    p.grad[...] = 1.0
    opt.step()  # v=1.9 -> p=-2.9
    np.testing.assert_allclose(p.data, [-2.9])


def test_sgd_weight_decay():
    p = _param(1.0)
    p.grad[...] = 0.0
    nn.SGD([p], lr=0.1, weight_decay=0.5).step()
    np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])


def test_rmsprop_normalizes_gradient_scale():
    big, small = _param(0.0), _param(0.0)
    opt_big = nn.RMSProp([big], lr=0.1)
    opt_small = nn.RMSProp([small], lr=0.1)
    for _ in range(20):
        big.grad[...] = 100.0
        small.grad[...] = 0.01
        opt_big.step()
        opt_small.step()
    # RMSProp steps depend on gradient *direction*, not magnitude.
    assert abs(big.data[0] - small.data[0]) < 0.05 * abs(big.data[0])


def test_adam_bias_correction_first_step():
    p = _param(0.0)
    p.grad[...] = 1.0
    nn.Adam([p], lr=0.1).step()
    # First Adam step is ~lr regardless of gradient scale.
    np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)


def test_adam_converges_on_quadratic():
    p = _param(5.0)
    opt = nn.Adam([p], lr=0.3)
    for _ in range(300):
        p.grad[...] = 2.0 * p.data  # d/dp p^2
        opt.step()
    assert abs(p.data[0]) < 1e-2


def test_constant_schedule():
    sched = nn.ConstantLR(0.05)
    assert sched.rate(0) == sched.rate(1000) == 0.05


def test_inverse_decay_schedule_matches_theory_form():
    sched = nn.InverseDecayLR(scale=2.0, gamma=8.0)
    assert sched.rate(0) == pytest.approx(0.25)
    assert sched.rate(8) == pytest.approx(0.125)
    # Monotone decreasing.
    rates = [sched.rate(t) for t in range(50)]
    assert all(a > b for a, b in zip(rates, rates[1:]))


def test_inverse_decay_invalid_gamma():
    with pytest.raises(ValueError):
        nn.InverseDecayLR(scale=1.0, gamma=0.0)


def test_step_schedule_halves():
    sched = nn.StepLR(1.0, every=10, decay=0.5)
    assert sched.rate(9) == 1.0
    assert sched.rate(10) == 0.5
    assert sched.rate(25) == 0.25


def test_zero_grad_clears_params(rng):
    model = nn.Sequential(nn.Linear(3, 3, rng=rng))
    opt = nn.SGD(model.parameters(), lr=0.1)
    for p in model.parameters():
        p.grad += 1.0
    opt.zero_grad()
    assert all(np.all(p.grad == 0) for p in model.parameters())


def test_make_optimizer_factory():
    p = _param(0.0)
    assert isinstance(make_optimizer("sgd", [p], 0.1), nn.SGD)
    assert isinstance(make_optimizer("RMSProp", [p], 0.1), nn.RMSProp)
    assert isinstance(make_optimizer("adam", [p], 0.1), nn.Adam)
    with pytest.raises(ValueError):
        make_optimizer("nope", [p], 0.1)


def test_optimizer_uses_schedule_per_step():
    p = _param(0.0)
    opt = nn.SGD([p], lr=nn.InverseDecayLR(scale=1.0, gamma=1.0))
    p.grad[...] = 1.0
    opt.step()  # lr = 1/(1+0) = 1
    np.testing.assert_allclose(p.data, [-1.0])
    p.grad[...] = 1.0
    opt.step()  # lr = 1/(1+1) = 0.5
    np.testing.assert_allclose(p.data, [-1.5])


def test_step_offset_shifts_schedule():
    p = _param(0.0)
    opt = nn.SGD([p], lr=nn.InverseDecayLR(scale=1.0, gamma=1.0))
    opt.step_count = 9
    assert opt.current_lr == pytest.approx(0.1)


def test_grad_clipping_scales_global_norm():
    a, b = _param(0.0), _param(0.0)
    a.grad[...] = 3.0
    b.grad[...] = 4.0  # global norm 5
    opt = nn.SGD([a, b], lr=1.0, max_grad_norm=1.0)
    opt.step()
    # Clipped to norm 1 -> grads (0.6, 0.8).
    np.testing.assert_allclose(a.data, [-0.6])
    np.testing.assert_allclose(b.data, [-0.8])


def test_grad_clipping_noop_below_threshold():
    p = _param(0.0)
    p.grad[...] = 0.5
    nn.SGD([p], lr=1.0, max_grad_norm=10.0).step()
    np.testing.assert_allclose(p.data, [-0.5])


def test_grad_clipping_invalid():
    with pytest.raises(ValueError):
        nn.SGD([_param(0.0)], lr=0.1, max_grad_norm=0.0)


def test_grad_clipping_available_on_all_optimizers():
    for cls in (nn.SGD, nn.RMSProp, nn.Adam):
        p = _param(0.0)
        p.grad[...] = 100.0
        opt = cls([p], lr=0.1, max_grad_norm=1.0)
        opt.step()
        assert np.isfinite(p.data).all()
