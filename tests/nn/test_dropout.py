"""Dropout tests."""

import numpy as np
import pytest

from repro import nn


def test_eval_mode_is_identity(rng):
    layer = nn.Dropout(0.5)
    layer.eval()
    x = rng.normal(size=(10, 10))
    np.testing.assert_array_equal(layer(x), x)


def test_zero_rate_is_identity(rng):
    layer = nn.Dropout(0.0)
    x = rng.normal(size=(5, 5))
    np.testing.assert_array_equal(layer(x), x)


def test_training_mode_zeroes_and_rescales():
    layer = nn.Dropout(0.5, seed=0)
    x = np.ones((2000,))
    out = layer(x)
    kept = out != 0.0
    # Inverted dropout rescales survivors by 1/keep.
    np.testing.assert_allclose(out[kept], 2.0)
    assert 0.4 < kept.mean() < 0.6


def test_backward_uses_same_mask():
    layer = nn.Dropout(0.5, seed=1)
    x = np.ones((100,))
    out = layer(x)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad == 0.0, out == 0.0)


def test_mean_preserving_in_expectation():
    layer = nn.Dropout(0.3, seed=2)
    x = np.ones((50000,))
    out = layer(x)
    assert abs(out.mean() - 1.0) < 0.02


def test_invalid_rate_raises():
    with pytest.raises(ValueError):
        nn.Dropout(1.0)
    with pytest.raises(ValueError):
        nn.Dropout(-0.1)


def test_deterministic_given_seed():
    a = nn.Dropout(0.5, seed=7)(np.ones(100))
    b = nn.Dropout(0.5, seed=7)(np.ones(100))
    np.testing.assert_array_equal(a, b)
