"""LSTM / BPTT tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import SoftmaxCrossEntropy
from tests.helpers import model_gradcheck


def test_lstm_cell_output_shape(rng):
    cell = nn.LSTMCell(4, 6, rng=rng)
    out = cell(rng.normal(size=(3, 5, 4)))
    assert out.shape == (3, 5, 6)


def test_multilayer_lstm_shapes(rng):
    lstm = nn.LSTM(4, 6, num_layers=3, rng=rng)
    out = lstm(rng.normal(size=(2, 7, 4)))
    assert out.shape == (2, 7, 6)
    assert len(lstm.cells) == 3


def test_forget_bias_initialized_to_one(rng):
    cell = nn.LSTMCell(3, 5, rng=rng)
    hid = 5
    np.testing.assert_array_equal(cell.bias.data[hid : 2 * hid], np.ones(hid))
    np.testing.assert_array_equal(cell.bias.data[:hid], np.zeros(hid))


def test_last_timestep_selects_final(rng):
    layer = nn.LastTimestep()
    x = rng.normal(size=(2, 4, 3))
    np.testing.assert_array_equal(layer(x), x[:, -1, :])
    grad = layer.backward(np.ones((2, 3)))
    assert grad.shape == x.shape
    np.testing.assert_array_equal(grad[:, :-1, :], 0.0)
    np.testing.assert_array_equal(grad[:, -1, :], 1.0)


def test_gradcheck_single_layer_lstm(rng):
    model = nn.Sequential(
        nn.LSTMCell(3, 5, rng=rng), nn.LastTimestep(), nn.Linear(5, 2, rng=rng)
    )
    x = rng.normal(size=(4, 6, 3))
    y = rng.integers(0, 2, 4)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(x), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12)


def test_gradcheck_stacked_lstm_with_embedding(rng):
    model = nn.Sequential(
        nn.Embedding(10, 4, rng=rng),
        nn.LSTM(4, 6, num_layers=2, rng=rng),
        nn.LastTimestep(),
        nn.Linear(6, 3, rng=rng),
    )
    ids = rng.integers(0, 10, size=(3, 5))
    y = rng.integers(0, 3, 3)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(ids), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12)


def test_backward_before_forward_raises(rng):
    with pytest.raises(RuntimeError):
        nn.LSTMCell(2, 2, rng=rng).backward(np.zeros((1, 3, 2)))
    with pytest.raises(RuntimeError):
        nn.LastTimestep().backward(np.zeros((1, 2)))


def test_lstm_state_starts_at_zero_each_forward(rng):
    """Two identical forwards produce identical outputs (stateless API)."""
    cell = nn.LSTMCell(3, 4, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    np.testing.assert_array_equal(cell(x), cell(x))
