"""Functional helper tests (with hypothesis property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.functional import accuracy, clip_by_norm, log_softmax, one_hot, softmax

finite_rows = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(2, 6)),
    elements=st.floats(-50, 50),
)


@given(finite_rows)
@settings(max_examples=50, deadline=None)
def test_softmax_rows_sum_to_one(logits):
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)
    assert (probs >= 0).all()


@given(finite_rows)
@settings(max_examples=50, deadline=None)
def test_softmax_shift_invariance(logits):
    np.testing.assert_allclose(softmax(logits), softmax(logits + 123.0), atol=1e-12)


@given(finite_rows)
@settings(max_examples=50, deadline=None)
def test_log_softmax_consistent_with_softmax(logits):
    np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits), atol=1e-10)


def test_softmax_no_overflow_with_huge_values():
    probs = softmax(np.array([[1e308, 0.0]]))
    assert np.isfinite(probs).all()


def test_one_hot_basic():
    out = one_hot(np.array([0, 2]), 3)
    np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])


def test_one_hot_out_of_range():
    with pytest.raises(ValueError):
        one_hot(np.array([3]), 3)
    with pytest.raises(ValueError):
        one_hot(np.array([-1]), 3)


def test_accuracy():
    logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


@given(
    hnp.arrays(np.float64, st.integers(1, 20), elements=st.floats(-100, 100)),
    st.floats(0.1, 10.0),
)
@settings(max_examples=50, deadline=None)
def test_clip_by_norm_bounds_norm(vec, max_norm):
    clipped = clip_by_norm(vec, max_norm)
    assert np.linalg.norm(clipped) <= max_norm + 1e-9


def test_clip_by_norm_identity_when_small():
    vec = np.array([0.1, 0.1])
    np.testing.assert_array_equal(clip_by_norm(vec, 10.0), vec)


def test_clip_by_norm_preserves_direction():
    vec = np.array([3.0, 4.0])
    clipped = clip_by_norm(vec, 1.0)
    np.testing.assert_allclose(clipped, [0.6, 0.8])


def test_clip_zero_vector():
    np.testing.assert_array_equal(clip_by_norm(np.zeros(3), 1.0), np.zeros(3))
