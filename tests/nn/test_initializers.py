"""Initializer tests."""

import numpy as np

from repro.nn.initializers import glorot_uniform, he_normal, orthogonal, zeros


def test_glorot_bounds(rng):
    w = glorot_uniform(rng, (100, 100), 100, 100)
    limit = np.sqrt(6.0 / 200)
    assert np.abs(w).max() <= limit
    assert np.abs(w).max() > 0.5 * limit  # actually spans the range


def test_he_normal_std(rng):
    w = he_normal(rng, (200, 200), fan_in=200)
    assert abs(w.std() - np.sqrt(2.0 / 200)) < 0.005


def test_orthogonal_square_is_orthogonal(rng):
    w = orthogonal(rng, (16, 16))
    np.testing.assert_allclose(w @ w.T, np.eye(16), atol=1e-10)


def test_orthogonal_rectangular_has_orthonormal_rows_or_cols(rng):
    tall = orthogonal(rng, (10, 4))
    np.testing.assert_allclose(tall.T @ tall, np.eye(4), atol=1e-10)
    wide = orthogonal(rng, (4, 10))
    np.testing.assert_allclose(wide @ wide.T, np.eye(4), atol=1e-10)


def test_orthogonal_gain(rng):
    w = orthogonal(rng, (8, 8), gain=2.0)
    np.testing.assert_allclose(w @ w.T, 4.0 * np.eye(8), atol=1e-10)


def test_zeros():
    assert np.all(zeros((2, 3)) == 0.0)


def test_determinism():
    a = glorot_uniform(np.random.default_rng(5), (4, 4), 4, 4)
    b = glorot_uniform(np.random.default_rng(5), (4, 4), 4, 4)
    np.testing.assert_array_equal(a, b)
