"""Loss function tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.functional import softmax


def test_cross_entropy_matches_manual(rng):
    logits = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, 5)
    loss = nn.SoftmaxCrossEntropy()
    value = loss(logits, labels)
    probs = softmax(logits)
    manual = -np.log(probs[np.arange(5), labels]).mean()
    assert abs(value - manual) < 1e-12


def test_cross_entropy_gradient_matches_softmax_minus_onehot(rng):
    logits = rng.normal(size=(3, 4))
    labels = np.array([0, 1, 3])
    loss = nn.SoftmaxCrossEntropy()
    loss(logits, labels)
    grad = loss.backward()
    expected = softmax(logits)
    expected[np.arange(3), labels] -= 1.0
    np.testing.assert_allclose(grad, expected / 3.0)


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss = nn.SoftmaxCrossEntropy()
    assert loss(logits, np.array([0, 1])) < 1e-10


def test_cross_entropy_stable_with_huge_logits():
    logits = np.array([[1e6, 0.0]])
    loss = nn.SoftmaxCrossEntropy()
    assert np.isfinite(loss(logits, np.array([1])))


def test_mse_value_and_gradient():
    loss = nn.MeanSquaredError()
    pred = np.array([[1.0, 2.0]])
    target = np.array([[0.0, 0.0]])
    assert loss(pred, target) == pytest.approx(2.5)
    np.testing.assert_allclose(loss.backward(), [[1.0, 2.0]])


def test_bce_matches_manual(rng):
    logits = rng.normal(size=(6,))
    targets = rng.integers(0, 2, 6).astype(float)
    loss = nn.BinaryCrossEntropy()
    value = loss(logits, targets)
    probs = 1 / (1 + np.exp(-logits))
    manual = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
    assert abs(value - manual) < 1e-9


def test_bce_gradient_shape_preserved():
    loss = nn.BinaryCrossEntropy()
    logits = np.zeros((4, 1))
    loss(logits, np.array([1.0, 0.0, 1.0, 0.0]))
    assert loss.backward().shape == (4, 1)


@pytest.mark.parametrize("cls", [nn.SoftmaxCrossEntropy, nn.MeanSquaredError, nn.BinaryCrossEntropy])
def test_backward_before_forward_raises(cls):
    with pytest.raises(RuntimeError):
        cls().backward()


def test_cross_entropy_mean_reduction_scaling(rng):
    """Duplicating the batch leaves the loss unchanged (mean reduction)."""
    logits = rng.normal(size=(4, 3))
    labels = rng.integers(0, 3, 4)
    loss = nn.SoftmaxCrossEntropy()
    single = loss(logits, labels)
    double = loss(np.vstack([logits, logits]), np.concatenate([labels, labels]))
    assert abs(single - double) < 1e-12
