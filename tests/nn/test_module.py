"""Tests for Parameter / Module / Sequential plumbing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


def test_parameter_holds_float64_and_zero_grad():
    p = Parameter(np.array([[1, 2], [3, 4]], dtype=np.int32), name="w")
    assert p.data.dtype == np.float64
    assert p.grad.shape == (2, 2)
    p.grad += 5.0
    p.zero_grad()
    assert np.all(p.grad == 0.0)


def test_parameter_shape_and_size():
    p = Parameter(np.zeros((3, 4)))
    assert p.shape == (3, 4)
    assert p.size == 12


def test_parameters_discovery_recurses_into_submodules(rng):
    model = nn.Sequential(nn.Linear(4, 3, rng=rng), nn.ReLU(), nn.Linear(3, 2, rng=rng))
    params = model.parameters()
    # two Linear layers x (weight, bias)
    assert len(params) == 4
    assert {p.data.shape for p in params} == {(4, 3), (3,), (3, 2), (2,)}


def test_parameters_discovery_includes_lists_of_modules(rng):
    lstm = nn.LSTM(4, 6, num_layers=2, rng=rng)
    # each LSTMCell has w_x, w_h, bias
    assert len(lstm.parameters()) == 6


def test_zero_grad_resets_all(rng):
    model = nn.Sequential(nn.Linear(4, 3, rng=rng), nn.Linear(3, 2, rng=rng))
    for p in model.parameters():
        p.grad += 1.0
    model.zero_grad()
    assert all(np.all(p.grad == 0.0) for p in model.parameters())


def test_train_eval_mode_propagates(rng):
    model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.Dropout(0.5), nn.Linear(4, 2, rng=rng))
    model.eval()
    assert not model.training
    assert all(not layer.training for layer in model.layers)
    model.train()
    assert all(layer.training for layer in model.layers)


def test_sequential_forward_backward_chain(rng):
    model = nn.Sequential(nn.Linear(5, 4, rng=rng), nn.Tanh(), nn.Linear(4, 3, rng=rng))
    x = rng.normal(size=(7, 5))
    out = model(x)
    assert out.shape == (7, 3)
    grad_in = model.backward(np.ones_like(out))
    assert grad_in.shape == x.shape


def test_sequential_len_getitem_append(rng):
    model = nn.Sequential(nn.Linear(2, 2, rng=rng))
    assert len(model) == 1
    model.append(nn.ReLU())
    assert len(model) == 2
    assert isinstance(model[1], nn.ReLU)


def test_base_module_forward_raises():
    with pytest.raises(NotImplementedError):
        Module().forward(np.zeros(3))
