"""Embedding layer tests."""

import numpy as np
import pytest

from repro import nn


def test_lookup_returns_rows(rng):
    layer = nn.Embedding(5, 3, rng=rng)
    ids = np.array([[0, 4], [2, 2]])
    out = layer(ids)
    assert out.shape == (2, 2, 3)
    np.testing.assert_array_equal(out[0, 1], layer.weight.data[4])


def test_gradient_scatters_to_used_rows(rng):
    layer = nn.Embedding(5, 2, rng=rng)
    ids = np.array([[1, 1], [3, 1]])
    layer(ids)
    layer.backward(np.ones((2, 2, 2)))
    # token 1 used three times, token 3 once, others zero
    np.testing.assert_allclose(layer.weight.grad[1], [3.0, 3.0])
    np.testing.assert_allclose(layer.weight.grad[3], [1.0, 1.0])
    np.testing.assert_allclose(layer.weight.grad[0], [0.0, 0.0])


def test_frozen_embedding_gets_no_gradient(rng):
    layer = nn.Embedding(4, 2, rng=rng, trainable=False)
    layer(np.array([[0, 1]]))
    layer.backward(np.ones((1, 2, 2)))
    assert np.all(layer.weight.grad == 0.0)


def test_pretrained_vectors_loaded():
    table = np.arange(8, dtype=np.float64).reshape(4, 2)
    layer = nn.Embedding(4, 2, pretrained=table)
    np.testing.assert_array_equal(layer.weight.data, table)


def test_pretrained_shape_mismatch_raises():
    with pytest.raises(ValueError):
        nn.Embedding(4, 2, pretrained=np.zeros((3, 2)))


def test_out_of_range_ids_raise(rng):
    layer = nn.Embedding(4, 2, rng=rng)
    with pytest.raises(ValueError):
        layer(np.array([[4]]))
    with pytest.raises(ValueError):
        layer(np.array([[-1]]))


def test_backward_before_forward_raises(rng):
    with pytest.raises(RuntimeError):
        nn.Embedding(4, 2, rng=rng).backward(np.zeros((1, 1, 2)))
