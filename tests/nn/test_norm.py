"""LayerNorm / BatchNorm tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import MeanSquaredError
from tests.helpers import model_gradcheck


def test_layernorm_output_statistics(rng):
    layer = nn.LayerNorm(16)
    x = rng.normal(3.0, 5.0, size=(8, 16))
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


def test_layernorm_affine_params(rng):
    layer = nn.LayerNorm(4)
    layer.gamma.data[...] = 2.0
    layer.beta.data[...] = 1.0
    x = rng.normal(size=(3, 4))
    out = layer(x)
    assert abs(out.mean() - 1.0) < 0.2  # shifted by beta


def test_layernorm_wrong_dim_raises(rng):
    with pytest.raises(ValueError):
        nn.LayerNorm(4)(rng.normal(size=(3, 5)))


def test_layernorm_gradcheck(rng):
    model = nn.Sequential(nn.Linear(6, 5, rng=rng), nn.LayerNorm(5), nn.Linear(5, 2, rng=rng))
    x = rng.normal(size=(4, 6))
    target = rng.normal(size=(4, 2))
    loss_fn = MeanSquaredError()

    def closure():
        loss = loss_fn.forward(model(x), target)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12, atol=1e-4)


def test_layernorm_works_on_3d_sequences(rng):
    layer = nn.LayerNorm(8)
    x = rng.normal(size=(2, 5, 8))
    out = layer(x)
    assert out.shape == x.shape
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)


def test_batchnorm_train_statistics(rng):
    layer = nn.BatchNorm1d(6)
    x = rng.normal(2.0, 3.0, size=(64, 6))
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)


def test_batchnorm_running_stats_update(rng):
    layer = nn.BatchNorm1d(3, momentum=0.5)
    x = rng.normal(10.0, 1.0, size=(32, 3))
    layer(x)
    assert np.all(layer.running_mean > 1.0)  # moved toward 10


def test_batchnorm_eval_uses_running_stats(rng):
    layer = nn.BatchNorm1d(3, momentum=1.0)  # running = batch stats
    x = rng.normal(5.0, 2.0, size=(64, 3))
    layer(x)
    layer.eval()
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)


def test_batchnorm_buffers_not_in_parameters(rng):
    layer = nn.BatchNorm1d(3)
    # Only gamma and beta are federated parameters; the running stats
    # stay local (the classic FedAvg-with-BN pitfall).
    assert len(layer.parameters()) == 2


def test_batchnorm_shape_validation(rng):
    with pytest.raises(ValueError):
        nn.BatchNorm1d(3)(rng.normal(size=(2, 4)))


def test_batchnorm_gradcheck(rng):
    model = nn.Sequential(
        nn.Linear(5, 4, rng=rng), nn.BatchNorm1d(4), nn.Tanh(), nn.Linear(4, 2, rng=rng)
    )
    x = rng.normal(size=(6, 5))
    target = rng.normal(size=(6, 2))
    loss_fn = MeanSquaredError()

    def closure():
        # Freeze running-stat drift during the finite-difference loop by
        # resetting them; the check differentiates the *batch* path.
        model[1].running_mean[...] = 0.0
        model[1].running_var[...] = 1.0
        loss = loss_fn.forward(model(x), target)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12, atol=1e-4)


def test_batchnorm_eval_backward_is_linear(rng):
    layer = nn.BatchNorm1d(3, momentum=1.0)
    x = rng.normal(size=(16, 3))
    layer(x)  # populate running stats
    layer.eval()
    layer(x)
    grad = layer.backward(np.ones((16, 3)))
    expected = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
    np.testing.assert_allclose(grad, np.broadcast_to(expected, (16, 3)))
