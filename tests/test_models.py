"""Model zoo tests."""

import numpy as np
import pytest

from repro.data.dataset import DatasetSpec
from repro.exceptions import ConfigError
from repro.models import (
    SplitModel,
    build_cnn,
    build_logistic,
    build_lstm_classifier,
    build_mlp,
    build_model,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.serialization import num_params
from tests.helpers import split_model_objective_gradcheck


IMAGE_SPEC = DatasetSpec("img", "image", (1, 12, 12), 10)
RGB_SPEC = DatasetSpec("rgb", "image", (3, 12, 12), 10)
SEQ_SPEC = DatasetSpec("seq", "sequence", (8,), 2, vocab_size=50)


def test_split_model_caches_features(rng):
    model = build_mlp(10, 3, rng, (8,), feature_dim=4)
    x = rng.normal(size=(5, 1, 2, 5))
    model.forward(x)
    assert model.last_features.shape == (5, 4)


def test_split_model_last_features_before_forward_raises(rng):
    model = build_mlp(10, 3, rng, (8,), feature_dim=4)
    with pytest.raises(RuntimeError):
        _ = model.last_features


def test_split_model_feature_param_count(rng):
    model = build_mlp(10, 3, rng, (8,), feature_dim=4)
    head_params = 4 * 3 + 3
    assert model.feature_param_count() == num_params(model) - head_params


def test_cnn_paper_architecture_dimensions(rng):
    """scale=1.0 must reproduce the paper's CNN: 32/64 channels and the
    512-unit FC feature layer on which MMD is computed."""
    model = build_cnn(1, 28, 10, rng, scale=1.0)
    assert model.feature_dim == 512
    conv1 = model.features[0]
    conv2 = model.features[3]
    assert conv1.out_channels == 32
    assert conv2.out_channels == 64
    assert conv1.kernel_size == 5


def test_cnn_scaled_keeps_shape(rng):
    model = build_cnn(3, 12, 10, rng, scale=0.25)
    out = model.forward(rng.normal(size=(2, 3, 12, 12)))
    assert out.shape == (2, 10)


def test_cnn_rejects_bad_image_size(rng):
    with pytest.raises(ValueError):
        build_cnn(1, 10, 10, rng)


def test_lstm_paper_architecture(rng):
    """2-layer LSTM, 256-d FC feature output (the paper's Sent140 model)."""
    model = build_lstm_classifier(100, 2, rng)
    assert model.feature_dim == 256
    lstm = model.features[1]
    assert lstm.num_layers == 2


def test_lstm_frozen_pretrained(rng):
    pre = rng.normal(size=(30, 50))
    model = build_lstm_classifier(
        30, 2, rng, embed_dim=50, pretrained_embeddings=pre, freeze_embeddings=True
    )
    emb = model.features[0]
    np.testing.assert_array_equal(emb.weight.data, pre)
    assert not emb.trainable


def test_logistic_is_affine(rng):
    """The convex model: output must be exactly linear in the input."""
    model = build_logistic(6, 3, rng)
    x1 = rng.normal(size=(1, 1, 2, 3))
    x2 = rng.normal(size=(1, 1, 2, 3))
    y1 = model.forward(x1)
    y2 = model.forward(x2)
    y_mid = model.forward((x1 + x2) / 2)
    np.testing.assert_allclose(y_mid, (y1 + y2) / 2, atol=1e-12)


@pytest.mark.parametrize(
    "name,spec",
    [("cnn", IMAGE_SPEC), ("cnn", RGB_SPEC), ("mlp", IMAGE_SPEC),
     ("logistic", IMAGE_SPEC), ("lstm", SEQ_SPEC)],
)
def test_zoo_builds_and_runs(name, spec, rng):
    model = build_model(name, spec, seed=0, scale=0.25)
    assert isinstance(model, SplitModel)
    if spec.kind == "image":
        x = rng.normal(size=(3, *spec.input_shape))
    else:
        x = rng.integers(0, spec.vocab_size, size=(3, *spec.input_shape))
    out = model.forward(x)
    assert out.shape == (3, spec.num_classes)


def test_zoo_unknown_model():
    with pytest.raises(ConfigError):
        build_model("transformer", IMAGE_SPEC)


def test_zoo_kind_mismatch():
    with pytest.raises(ConfigError):
        build_model("cnn", SEQ_SPEC)
    with pytest.raises(ConfigError):
        build_model("lstm", IMAGE_SPEC)


def test_zoo_same_seed_same_model():
    from repro.nn.serialization import get_flat_params

    a = build_model("mlp", IMAGE_SPEC, seed=3)
    b = build_model("mlp", IMAGE_SPEC, seed=3)
    np.testing.assert_array_equal(get_flat_params(a), get_flat_params(b))


def test_cnn_gradcheck_with_feature_injection(rng):
    """The CNN must backprop exactly, including the regularizer hook."""
    model = build_cnn(1, 8, 3, rng, scale=0.1, feature_dim=6)
    x = rng.normal(size=(3, 1, 8, 8))
    y = rng.integers(0, 3, 3)
    target = rng.normal(size=6)
    loss_fn = SoftmaxCrossEntropy()
    from repro.core.regularizer import DistributionRegularizer

    reg = DistributionRegularizer(0.2, mode="loo")

    def objective_and_grads():
        logits = model.forward(x)
        task = loss_fn.forward(logits, y)
        result = reg.evaluate(model.last_features, target)
        return task + result.loss, loss_fn.backward(), result.feature_grad

    split_model_objective_gradcheck(model, objective_and_grads, rng, num_coords=8)


def test_zoo_builds_gru(rng):
    model = build_model("gru", SEQ_SPEC, seed=0, scale=0.25)
    ids = rng.integers(0, SEQ_SPEC.vocab_size, size=(3, *SEQ_SPEC.input_shape))
    out = model.forward(ids)
    assert out.shape == (3, SEQ_SPEC.num_classes)


def test_gru_classifier_smaller_than_lstm(rng):
    from repro.models import build_gru_classifier, build_lstm_classifier

    gru = build_gru_classifier(50, 2, rng, scale=0.25)
    lstm = build_lstm_classifier(50, 2, rng, scale=0.25)
    assert num_params(gru) < num_params(lstm)
