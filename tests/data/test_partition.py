"""Partitioner tests, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    by_user_partition,
    dirichlet_partition,
    iid_partition,
    quantity_skew_sizes,
    similarity_partition,
)
from repro.data.stats import label_histograms, mean_pairwise_tv_distance
from repro.data.dataset import ArrayDataset
from repro.exceptions import DataError


def _labels(n=200, classes=10, seed=0):
    return np.random.default_rng(seed).integers(0, classes, n)


def _assert_exact_cover(parts, n):
    joined = np.sort(np.concatenate(parts))
    np.testing.assert_array_equal(joined, np.arange(n))


@given(
    st.integers(50, 300),
    st.integers(2, 12),
    st.floats(0.0, 1.0),
    st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_similarity_partition_is_exact_cover(n, clients, sim, seed):
    """Property: every index appears in exactly one client, none lost."""
    labels = _labels(n, seed=seed)
    rng = np.random.default_rng(seed)
    parts = similarity_partition(labels, clients, sim, rng)
    assert len(parts) == clients
    _assert_exact_cover(parts, n)
    assert all(len(p) > 0 for p in parts)


def test_similarity_zero_concentrates_labels(rng):
    labels = np.sort(_labels(1000, classes=10))
    parts = similarity_partition(labels, 10, 0.0, rng)
    hists = label_histograms(
        [ArrayDataset(np.zeros((len(p), 1)), labels[p]) for p in parts], 10
    )
    tv_noniid = mean_pairwise_tv_distance(hists)
    parts_iid = similarity_partition(labels, 10, 1.0, rng)
    hists_iid = label_histograms(
        [ArrayDataset(np.zeros((len(p), 1)), labels[p]) for p in parts_iid], 10
    )
    tv_iid = mean_pairwise_tv_distance(hists_iid)
    assert tv_noniid > 0.6
    assert tv_iid < 0.25
    assert tv_noniid > 2 * tv_iid


def test_similarity_interpolates_skew(rng):
    labels = _labels(1000)
    tvs = []
    for sim in [0.0, 0.5, 1.0]:
        parts = similarity_partition(labels, 10, sim, rng)
        hists = label_histograms(
            [ArrayDataset(np.zeros((len(p), 1)), labels[p]) for p in parts], 10
        )
        tvs.append(mean_pairwise_tv_distance(hists))
    assert tvs[0] > tvs[1] > tvs[2]


def test_similarity_invalid_inputs(rng):
    with pytest.raises(DataError):
        similarity_partition(_labels(10), 3, 1.5, rng)
    with pytest.raises(DataError):
        similarity_partition(_labels(2), 3, 0.0, rng)


def test_iid_partition_even_sizes(rng):
    parts = iid_partition(100, 8, rng)
    sizes = [len(p) for p in parts]
    assert sum(sizes) == 100
    assert max(sizes) - min(sizes) <= 1


def test_iid_partition_errors(rng):
    with pytest.raises(DataError):
        iid_partition(2, 3, rng)
    with pytest.raises(DataError):
        iid_partition(10, 0, rng)


@given(st.floats(0.05, 5.0), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_dirichlet_partition_cover(alpha, seed):
    labels = _labels(300, seed=seed)
    rng = np.random.default_rng(seed)
    parts = dirichlet_partition(labels, 6, alpha, rng)
    _assert_exact_cover(parts, 300)


def test_dirichlet_small_alpha_is_skewed(rng):
    labels = _labels(2000)
    skewed = dirichlet_partition(labels, 10, 0.05, rng)
    uniform = dirichlet_partition(labels, 10, 100.0, rng)

    def tv(parts):
        hists = label_histograms(
            [ArrayDataset(np.zeros((len(p), 1)), labels[p]) for p in parts], 10
        )
        return mean_pairwise_tv_distance(hists)

    assert tv(skewed) > tv(uniform) + 0.2


def test_dirichlet_invalid_alpha(rng):
    with pytest.raises(DataError):
        dirichlet_partition(_labels(), 4, 0.0, rng)


@given(st.integers(2, 40), st.floats(0.1, 2.0), st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_quantity_skew_sizes_sum_and_min(clients, sigma, seed):
    rng = np.random.default_rng(seed)
    total = clients * 25
    sizes = quantity_skew_sizes(total, clients, rng, sigma=sigma, min_size=2)
    assert sizes.sum() == total
    assert sizes.min() >= 2


def test_quantity_skew_produces_imbalance(rng):
    sizes = quantity_skew_sizes(5000, 50, rng, sigma=1.2)
    assert sizes.max() > 3 * sizes.min()


def test_quantity_skew_infeasible(rng):
    with pytest.raises(DataError):
        quantity_skew_sizes(5, 10, rng, min_size=2)


def test_by_user_partition_groups():
    users = np.array([3, 1, 3, 2, 1])
    parts = by_user_partition(users)
    assert len(parts) == 3
    _assert_exact_cover(parts, 5)
    for p in parts:
        assert len(np.unique(users[p])) == 1


@given(st.integers(2, 10), st.integers(1, 4), st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_shard_partition_cover(clients, shards, seed):
    from repro.data.partition import shard_partition

    labels = _labels(clients * shards * 10, seed=seed)
    rng = np.random.default_rng(seed)
    parts = shard_partition(labels, clients, shards, rng)
    _assert_exact_cover(parts, len(labels))


def test_shard_partition_limits_labels_per_client(rng):
    from repro.data.partition import shard_partition

    labels = _labels(2000, classes=10)
    parts = shard_partition(labels, 10, 2, rng)
    # 2 shards per client on sorted labels -> at most ~3 distinct labels
    # (shard boundaries can straddle a label change).
    for p in parts:
        assert len(np.unique(labels[p])) <= 4


def test_shard_partition_validation(rng):
    from repro.data.partition import shard_partition

    with pytest.raises(DataError):
        shard_partition(_labels(5), 10, 2, rng)
    with pytest.raises(DataError):
        shard_partition(_labels(100), 5, 0, rng)
