"""Transform / augmentation tests."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.transforms import (
    Cutout,
    GaussianNoise,
    HorizontalFlip,
    Pipeline,
    RandomShift,
    augment_dataset,
)
from repro.exceptions import DataError


def _images(rng, n=6, c=1, side=8):
    return np.clip(rng.random((n, c, side, side)), 0, 1)


def test_random_shift_preserves_shape_and_range(rng):
    images = _images(rng)
    out = RandomShift(2).apply(images, rng)
    assert out.shape == images.shape
    assert out.min() >= 0.0


def test_random_shift_zero_is_identity(rng):
    images = _images(rng)
    np.testing.assert_array_equal(RandomShift(0).apply(images, rng), images)


def test_random_shift_pads_with_zeros():
    images = np.ones((1, 1, 4, 4))
    rng = np.random.default_rng(3)
    out = RandomShift(2).apply(images, rng)
    # Wherever content rolled out, zeros rolled in; total mass never grows.
    assert out.sum() <= images.sum()


def test_flip_probability_extremes(rng):
    images = _images(rng)
    never = HorizontalFlip(0.0).apply(images, rng)
    np.testing.assert_array_equal(never, images)
    always = HorizontalFlip(1.0).apply(images, rng)
    np.testing.assert_array_equal(always, images[:, :, :, ::-1])


def test_flip_is_involution(rng):
    images = _images(rng)
    twice = HorizontalFlip(1.0).apply(HorizontalFlip(1.0).apply(images, rng), rng)
    np.testing.assert_array_equal(twice, images)


def test_gaussian_noise_clips(rng):
    images = _images(rng)
    out = GaussianNoise(0.5).apply(images, rng)
    assert out.min() >= 0.0 and out.max() <= 1.0
    assert not np.array_equal(out, images)


def test_gaussian_noise_zero_sigma(rng):
    images = _images(rng)
    np.testing.assert_array_equal(GaussianNoise(0.0).apply(images, rng), images)


def test_cutout_zeroes_patch(rng):
    images = np.ones((4, 1, 8, 8))
    out = Cutout(3).apply(images, rng)
    for img in out:
        assert (img == 0).sum() == 9


def test_cutout_too_big(rng):
    with pytest.raises(DataError):
        Cutout(10).apply(np.ones((1, 1, 8, 8)), rng)


def test_pipeline_composes(rng):
    images = _images(rng)
    pipe = Pipeline(RandomShift(1), GaussianNoise(0.05))
    out = pipe.apply(images, rng)
    assert out.shape == images.shape
    assert not np.array_equal(out, images)


def test_augment_dataset_grows(rng):
    ds = ArrayDataset(_images(rng, n=5), np.arange(5) % 2)
    grown = augment_dataset(ds, GaussianNoise(0.1), rng, copies=2)
    assert len(grown) == 15
    np.testing.assert_array_equal(grown.y[:5], ds.y)
    np.testing.assert_array_equal(grown.x[:5], ds.x)  # originals kept


def test_augment_dataset_invalid_copies(rng):
    ds = ArrayDataset(_images(rng, n=2), np.zeros(2))
    with pytest.raises(DataError):
        augment_dataset(ds, GaussianNoise(0.1), rng, copies=0)


@pytest.mark.parametrize("cls,kwargs", [
    (RandomShift, {"max_pixels": -1}),
    (HorizontalFlip, {"prob": 1.5}),
    (GaussianNoise, {"sigma": -0.1}),
    (Cutout, {"size": 0}),
])
def test_invalid_params(cls, kwargs):
    with pytest.raises(DataError):
        cls(**kwargs)


def test_transforms_deterministic_given_rng(rng):
    images = _images(rng)
    a = Pipeline(RandomShift(1), HorizontalFlip(0.5)).apply(
        images, np.random.default_rng(9)
    )
    b = Pipeline(RandomShift(1), HorizontalFlip(0.5)).apply(
        images, np.random.default_rng(9)
    )
    np.testing.assert_array_equal(a, b)
