"""Virtual (lazy) federated populations (repro.data.virtual).

The recipe contract: any client shard is a pure function of
``(partition, client_id)``, so lazy access, eager materialization, LRU
eviction, and re-materialization all yield identical bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_virtual_federation
from repro.data.virtual import (
    VirtualClientSet,
    VirtualPartition,
    materialize_client,
    materialize_test,
)
from repro.exceptions import DataError


def test_partition_validates_inputs():
    with pytest.raises(DataError):
        VirtualPartition(population=0)
    with pytest.raises(DataError):
        VirtualPartition(population=10, dataset="synth_cifar")
    with pytest.raises(DataError):
        VirtualPartition(population=10, similarity=1.5)
    with pytest.raises(DataError):
        VirtualPartition(population=10, image_size=4)


def test_home_labels_cover_all_classes_in_contiguous_blocks():
    part = VirtualPartition(population=100, seed=1)
    labels = [part.home_label(k) for k in range(100)]
    assert sorted(set(labels)) == list(range(10))
    assert labels == sorted(labels)  # contiguous id blocks share a label


def test_materialize_client_is_deterministic_and_independent():
    part = VirtualPartition(population=1000, seed=7, similarity=0.2)
    a = materialize_client(part, 423, 20)
    b = materialize_client(part, 423, 20)
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.y, b.y)
    # Rendering another client first must not disturb the stream.
    materialize_client(part, 5, 20)
    c = materialize_client(part, 423, 20)
    np.testing.assert_array_equal(a.x, c.x)


def test_materialize_client_range_check():
    part = VirtualPartition(population=10, seed=0)
    with pytest.raises(DataError):
        materialize_client(part, 10, 20)


def test_similarity_zero_is_pure_home_label():
    part = VirtualPartition(population=50, seed=3, similarity=0.0)
    shard = materialize_client(part, 7, 20)
    assert set(shard.y.tolist()) == {part.home_label(7)}


def test_similarity_one_is_iid():
    part = VirtualPartition(population=50, seed=3, similarity=1.0)
    labels = np.concatenate(
        [materialize_client(part, k, 40).y for k in range(5)]
    )
    assert len(set(labels.tolist())) > 3  # spread well beyond home labels


def test_lru_eviction_rerenders_identically():
    fed = make_virtual_federation(20, seed=9, similarity=0.1, max_live=2)
    first = fed.clients[3].x.copy()
    fed.clients[4]
    fed.clients[5]  # evicts client 3 (max_live=2)
    assert fed.clients.live_clients == 2
    np.testing.assert_array_equal(fed.clients[3].x, first)


def test_live_clients_bounded_and_release_clears():
    fed = make_virtual_federation(100, seed=1, max_live=4)
    for k in range(10):
        fed.clients[k]
    assert fed.clients.live_clients == 4
    fed.release()
    assert fed.clients.live_clients == 0


def test_materialization_counter_tracks_renders():
    fed = make_virtual_federation(10, seed=1, max_live=8)
    fed.clients[0]
    fed.clients[0]  # cached, no re-render
    assert fed.clients.materializations == 1
    fed.clients[1]
    assert fed.clients.materializations == 2


def test_client_set_rejects_bad_max_live():
    part = VirtualPartition(population=5, seed=0)
    with pytest.raises(DataError):
        VirtualClientSet(part, part.client_sizes(), max_live=0)


def test_eager_materialization_is_bit_identical():
    virt = make_virtual_federation(8, seed=5, similarity=0.3, size_sigma=0.5)
    eager = virt.materialize()
    assert eager.num_clients == virt.num_clients
    for k in range(8):
        np.testing.assert_array_equal(eager.clients[k].x, virt.clients[k].x)
        np.testing.assert_array_equal(eager.clients[k].y, virt.clients[k].y)
    np.testing.assert_array_equal(eager.test.x, virt.test.x)


def test_federated_dataset_duck_type_surface():
    fed = make_virtual_federation(30, seed=2, size_sigma=0.4)
    assert fed.virtual is True
    assert fed.num_clients == 30
    assert fed.client_sizes.shape == (30,)
    assert fed.weights.shape == (30,)
    assert np.isclose(fed.weights.sum(), 1.0)
    assert fed.total_train_samples() == int(fed.client_sizes.sum())
    assert len(fed.clients[3]) == fed.client_sizes[3]
    assert fed.client_test == []


def test_size_sigma_zero_gives_uniform_sizes():
    part = VirtualPartition(population=100, seed=0, samples_per_client=12)
    assert (part.client_sizes() == 12).all()


def test_size_sigma_skews_but_respects_floor():
    part = VirtualPartition(
        population=500, seed=0, samples_per_client=10, size_sigma=1.0, min_samples=4
    )
    sizes = part.client_sizes()
    assert sizes.min() >= 4
    assert len(np.unique(sizes)) > 5


def test_global_test_set_is_deterministic():
    part = VirtualPartition(population=10, seed=4, num_test=64)
    a, b = materialize_test(part), materialize_test(part)
    np.testing.assert_array_equal(a.x, b.x)
    assert len(a) == 64


def test_population_memory_is_not_enumerated():
    # Constructing a million-client federation must be instant and tiny:
    # the only O(N) piece is the int64 size vector.
    fed = make_virtual_federation(1_000_000, seed=1)
    assert fed.num_clients == 1_000_000
    assert fed.clients.live_clients == 0
    assert fed.client_sizes.nbytes == 8_000_000
