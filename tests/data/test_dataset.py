"""ArrayDataset / DatasetSpec / FederatedDataset tests."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DatasetSpec, FederatedDataset
from repro.exceptions import DataError


def _dataset(n=10, dim=3, seed=0):
    gen = np.random.default_rng(seed)
    return ArrayDataset(gen.normal(size=(n, dim)), gen.integers(0, 2, n))


def test_length_mismatch_raises():
    with pytest.raises(DataError):
        ArrayDataset(np.zeros((3, 2)), np.zeros(4))


def test_subset_selects_rows():
    ds = _dataset(10)
    sub = ds.subset(np.array([1, 3]))
    assert len(sub) == 2
    np.testing.assert_array_equal(sub.x[0], ds.x[1])


def test_split_fractions(rng):
    first, second = _dataset(100).split(0.8, rng)
    assert len(first) == 80
    assert len(second) == 20


def test_split_invalid_frac(rng):
    with pytest.raises(DataError):
        _dataset().split(0.0, rng)
    with pytest.raises(DataError):
        _dataset().split(1.0, rng)


def test_batches_cover_everything_once(rng):
    ds = _dataset(10)
    seen = sum(len(y) for _x, y in ds.batches(3, rng))
    assert seen == 10


def test_batches_without_rng_are_ordered():
    ds = _dataset(6)
    x, _y = next(iter(ds.batches(3)))
    np.testing.assert_array_equal(x, ds.x[:3])


def test_batches_invalid_size():
    with pytest.raises(DataError):
        list(_dataset().batches(0))


def test_sample_batch_with_replacement_when_needed(rng):
    ds = _dataset(3)
    x, y = ds.sample_batch(10, rng)
    assert len(y) == 3  # capped at dataset size without replacement path
    x, y = ds.sample_batch(2, rng)
    assert len(y) == 2


def test_label_counts():
    ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 0, 2, 1]))
    np.testing.assert_array_equal(ds.label_counts(4), [2, 1, 1, 0])


def test_spec_validation():
    with pytest.raises(DataError):
        DatasetSpec("x", "video", (3,), 2)
    with pytest.raises(DataError):
        DatasetSpec("x", "sequence", (3,), 2)  # missing vocab
    spec = DatasetSpec("x", "image", (3, 4, 4), 2)
    assert spec.flat_dim == 48


def test_federated_weights_normalize():
    clients = [_dataset(10, seed=1), _dataset(30, seed=2)]
    spec = DatasetSpec("x", "image", (3,), 2)
    fed = FederatedDataset(spec=spec, clients=clients, test=_dataset(5, seed=3))
    np.testing.assert_allclose(fed.weights, [0.25, 0.75])
    assert fed.total_train_samples() == 40
    assert fed.num_clients == 2


def test_federated_empty_client_rejected():
    spec = DatasetSpec("x", "image", (3,), 2)
    empty = ArrayDataset(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(DataError):
        FederatedDataset(spec=spec, clients=[_dataset(), empty], test=_dataset())


def test_federated_no_clients_rejected():
    spec = DatasetSpec("x", "image", (3,), 2)
    with pytest.raises(DataError):
        FederatedDataset(spec=spec, clients=[], test=_dataset())
