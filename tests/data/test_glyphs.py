"""Glyph renderer tests."""

import numpy as np
import pytest

from repro.data.glyphs import (
    GLYPH_SET,
    GlyphStyle,
    glyph_bitmap,
    random_style,
    render_glyph,
    _dilate,
    _shear_rows,
)
from repro.exceptions import DataError


def test_all_glyphs_have_bitmaps():
    for char in GLYPH_SET:
        bmp = glyph_bitmap(char)
        assert bmp.shape == (7, 5)
        assert bmp.sum() > 0


def test_unknown_glyph_raises():
    with pytest.raises(DataError):
        glyph_bitmap("?")


def test_glyphs_are_distinct():
    flat = {char: glyph_bitmap(char).tobytes() for char in GLYPH_SET}
    assert len(set(flat.values())) == len(GLYPH_SET)


def test_dilate_thickens():
    bmp = glyph_bitmap("1")
    assert _dilate(bmp).sum() > bmp.sum()


def test_shear_shifts_rows():
    img = np.zeros((4, 6))
    img[:, 2] = 1.0
    sheared = _shear_rows(img, 1.0)
    for row in range(4):
        assert sheared[row, 2 + row] == 1.0


def test_render_shape_and_range(rng):
    style = GlyphStyle(noise=0.2)
    img = render_glyph("5", 12, style, rng)
    assert img.shape == (12, 12)
    assert img.min() >= 0.0 and img.max() <= 1.0


def test_render_noise_free_is_clean(rng):
    style = GlyphStyle(noise=0.0, intensity=1.0)
    img = render_glyph("8", 12, style, rng, jitter=0)
    values = np.unique(img)
    assert set(values).issubset({0.0, 1.0})


def test_render_too_big_glyph_raises(rng):
    style = GlyphStyle(scale=3)
    with pytest.raises(DataError):
        render_glyph("0", 12, style, rng)  # 21x15 > 12


def test_random_style_fits_canvas(rng):
    for _ in range(30):
        style = random_style(rng, canvas_size=12)
        render_glyph("W", 12, style, rng)  # must not raise


def test_same_style_same_seed_is_deterministic():
    style = GlyphStyle(shear=0.1, thickness=1, noise=0.1)
    a = render_glyph("3", 12, style, np.random.default_rng(5))
    b = render_glyph("3", 12, style, np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)
