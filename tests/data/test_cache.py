"""Dataset cache tests."""

import numpy as np
import pytest

from repro.data import make_synth_mnist
from repro.data.cache import cached_dataset, clear_cache, _cache_key
from repro.exceptions import DataError


def _generator(seed=0):
    return lambda: make_synth_mnist(num_train=40, num_test=10, seed=seed)


def test_miss_then_hit(tmp_path):
    calls = []

    def generator():
        calls.append(1)
        return make_synth_mnist(num_train=40, num_test=10, seed=1)

    params = {"num_train": 40, "seed": 1}
    spec1, train1, test1 = cached_dataset(str(tmp_path), "mnist", params, generator)
    spec2, train2, test2 = cached_dataset(str(tmp_path), "mnist", params, generator)
    assert len(calls) == 1  # second call served from disk
    np.testing.assert_array_equal(train1.x, train2.x)
    np.testing.assert_array_equal(test1.y, test2.y)
    assert spec1 == spec2


def test_different_params_different_entries(tmp_path):
    a = cached_dataset(str(tmp_path), "mnist", {"seed": 1}, _generator(1))
    b = cached_dataset(str(tmp_path), "mnist", {"seed": 2}, _generator(2))
    assert not np.array_equal(a[1].x, b[1].x)


def test_cache_key_stable_and_distinct():
    assert _cache_key("m", {"a": 1, "b": 2}) == _cache_key("m", {"b": 2, "a": 1})
    assert _cache_key("m", {"a": 1}) != _cache_key("m", {"a": 2})
    assert _cache_key("m", {"a": 1}) != _cache_key("n", {"a": 1})


def test_spec_roundtrip_preserves_fields(tmp_path):
    spec, _train, _test = cached_dataset(
        str(tmp_path), "mnist", {"seed": 3}, _generator(3)
    )
    spec2, _t, _te = cached_dataset(str(tmp_path), "mnist", {"seed": 3}, _generator(3))
    assert spec2.name == spec.name
    assert spec2.input_shape == spec.input_shape
    assert spec2.num_classes == spec.num_classes
    assert spec2.vocab_size is None


def test_corrupt_cache_raises(tmp_path):
    params = {"seed": 4}
    cached_dataset(str(tmp_path), "mnist", params, _generator(4))
    path = tmp_path / _cache_key("mnist", params)
    path.write_bytes(b"garbage")
    with pytest.raises((DataError, Exception)):
        cached_dataset(str(tmp_path), "mnist", params, _generator(4))


def test_clear_cache(tmp_path):
    cached_dataset(str(tmp_path), "a", {"s": 1}, _generator(1))
    cached_dataset(str(tmp_path), "b", {"s": 1}, _generator(2))
    assert clear_cache(str(tmp_path), name="a") == 1
    assert clear_cache(str(tmp_path)) == 1  # only 'b' remains
    assert clear_cache(str(tmp_path)) == 0
    assert clear_cache(str(tmp_path / "missing")) == 0
