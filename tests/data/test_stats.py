"""Partition statistics tests."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.stats import (
    label_entropy,
    label_histograms,
    mean_pairwise_tv_distance,
    quantity_imbalance,
)


def _client(labels):
    labels = np.asarray(labels)
    return ArrayDataset(np.zeros((len(labels), 1)), labels)


def test_label_histograms_normalized():
    hists = label_histograms([_client([0, 0, 1]), _client([2, 2])], 3)
    np.testing.assert_allclose(hists[0], [2 / 3, 1 / 3, 0.0])
    np.testing.assert_allclose(hists[1], [0.0, 0.0, 1.0])


def test_label_histograms_counts():
    hists = label_histograms([_client([0, 0, 1])], 3, normalize=False)
    np.testing.assert_array_equal(hists[0], [2, 1, 0])


def test_tv_distance_extremes():
    identical = label_histograms([_client([0, 1]), _client([0, 1])], 2)
    assert mean_pairwise_tv_distance(identical) == pytest.approx(0.0)
    disjoint = label_histograms([_client([0, 0]), _client([1, 1])], 2)
    assert mean_pairwise_tv_distance(disjoint) == pytest.approx(1.0)


def test_tv_distance_single_client_is_zero():
    hists = label_histograms([_client([0, 1])], 2)
    assert mean_pairwise_tv_distance(hists) == 0.0


def test_label_entropy():
    hists = np.array([[1.0, 0.0], [0.5, 0.5]])
    ent = label_entropy(hists)
    assert ent[0] == pytest.approx(0.0)
    assert ent[1] == pytest.approx(np.log(2))


def test_quantity_imbalance():
    assert quantity_imbalance(np.array([10, 10, 10])) == pytest.approx(0.0)
    assert quantity_imbalance(np.array([1, 100])) > 0.9
    assert quantity_imbalance(np.array([0, 0])) == 0.0
