"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.data import (
    make_synth_cifar,
    make_synth_femnist,
    make_synth_mnist,
    make_synth_sent140,
)
from repro.data.stats import label_histograms, mean_pairwise_tv_distance, quantity_imbalance
from repro.data.partition import by_user_partition
from repro.data.synth_femnist import FemnistConfig
from repro.data.synth_sent140 import Sent140Config
from repro.exceptions import DataError


def test_synth_mnist_shapes_and_spec():
    spec, train, test = make_synth_mnist(num_train=100, num_test=40)
    assert spec.input_shape == (1, 12, 12)
    assert spec.num_classes == 10
    assert train.x.shape == (100, 1, 12, 12)
    assert len(test) == 40
    assert train.x.min() >= 0.0 and train.x.max() <= 1.0


def test_synth_mnist_deterministic():
    _s1, a, _t1 = make_synth_mnist(num_train=50, num_test=10, seed=3)
    _s2, b, _t2 = make_synth_mnist(num_train=50, num_test=10, seed=3)
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.y, b.y)


def test_synth_mnist_seed_changes_data():
    _s1, a, _ = make_synth_mnist(num_train=50, num_test=10, seed=3)
    _s2, b, _ = make_synth_mnist(num_train=50, num_test=10, seed=4)
    assert not np.array_equal(a.x, b.x)


def test_synth_mnist_min_size():
    with pytest.raises(DataError):
        make_synth_mnist(image_size=8)


def test_synth_mnist_classes_are_linearly_separable_enough():
    """A ridge classifier on raw pixels should beat chance by a wide
    margin — the dataset must be learnable like real MNIST."""
    _spec, train, test = make_synth_mnist(num_train=800, num_test=200, seed=1)
    x = train.x.reshape(len(train), -1)
    xt = test.x.reshape(len(test), -1)
    onehot = np.eye(10)[train.y]
    w = np.linalg.solve(x.T @ x + 1e-1 * np.eye(x.shape[1]), x.T @ onehot)
    acc = (xt @ w).argmax(axis=1)
    # A raw-pixel linear probe is far below the MLP's ~0.9 because of
    # positional jitter, but must still beat chance several times over.
    assert (acc == test.y).mean() > 0.4


def test_synth_cifar_shapes():
    spec, train, test = make_synth_cifar(num_train=80, num_test=20)
    assert spec.input_shape == (3, 12, 12)
    assert train.x.shape == (80, 3, 12, 12)
    assert train.x.min() >= 0.0 and train.x.max() <= 1.0


def test_synth_cifar_harder_than_mnist():
    """Same linear probe should do clearly worse on synth-CIFAR than on
    synth-MNIST (CIFAR's role: a task where non-IID hurts a lot)."""

    def probe_acc(train, test):
        x = train.x.reshape(len(train), -1)
        xt = test.x.reshape(len(test), -1)
        onehot = np.eye(10)[train.y]
        w = np.linalg.solve(x.T @ x + 1e-1 * np.eye(x.shape[1]), x.T @ onehot)
        return ((xt @ w).argmax(axis=1) == test.y).mean()

    _s, mtrain, mtest = make_synth_mnist(num_train=600, num_test=200, seed=2)
    _s, ctrain, ctest = make_synth_cifar(num_train=600, num_test=200, seed=2)
    acc_mnist = probe_acc(mtrain, mtest)
    acc_cifar = probe_acc(ctrain, ctest)
    assert acc_cifar > 0.15  # learnable (chance is 0.1)
    assert acc_cifar < acc_mnist  # but harder


def test_synth_cifar_deterministic():
    _s, a, _ = make_synth_cifar(num_train=30, num_test=5, seed=9)
    _s, b, _ = make_synth_cifar(num_train=30, num_test=5, seed=9)
    np.testing.assert_array_equal(a.x, b.x)


def test_sent140_structure():
    cfg = Sent140Config(num_users=10, tweets_per_user_mean=10, seed=0)
    spec, train, test, users = make_synth_sent140(cfg)
    assert spec.kind == "sequence"
    assert spec.vocab_size == cfg.vocab_size
    assert train.x.shape[1] == cfg.seq_len
    assert train.x.max() < cfg.vocab_size
    assert len(users) == len(train)
    assert set(np.unique(train.y)) <= {0, 1}


def test_sent140_user_partition_is_feature_skewed():
    """Different users use different neutral vocabularies."""
    cfg = Sent140Config(num_users=8, tweets_per_user_mean=30, seed=1)
    _spec, train, _test, users = make_synth_sent140(cfg)
    parts = by_user_partition(users)
    vocab_sets = []
    for p in parts:
        tokens = train.x[p].reshape(-1)
        neutral = tokens[tokens >= 2 * cfg.num_sentiment_words]
        vocab_sets.append(set(neutral.tolist()))
    overlaps = [
        len(a & b) / max(1, len(a | b))
        for i, a in enumerate(vocab_sets)
        for b in vocab_sets[i + 1 :]
    ]
    assert np.mean(overlaps) < 0.5  # mostly disjoint styles


def test_sent140_vocab_too_small():
    with pytest.raises(DataError):
        make_synth_sent140(Sent140Config(vocab_size=10))


def test_femnist_quantity_skew_and_writers():
    cfg = FemnistConfig(num_writers=20, samples_per_writer_mean=15, seed=0)
    spec, train, test, writers = make_synth_femnist(cfg)
    assert spec.num_classes == 10
    assert len(writers) == len(train)
    parts = by_user_partition(writers)
    sizes = np.array([len(p) for p in parts])
    assert quantity_imbalance(sizes) > 0.2


def test_femnist_label_skew_across_writers():
    cfg = FemnistConfig(num_writers=12, samples_per_writer_mean=40, seed=2)
    _spec, train, _test, writers = make_synth_femnist(cfg)
    parts = by_user_partition(writers)
    hists = label_histograms([train.subset(p) for p in parts], 10)
    assert mean_pairwise_tv_distance(hists) > 0.2


def test_femnist_letters_variant():
    cfg = FemnistConfig(num_writers=5, samples_per_writer_mean=10, num_classes=36, seed=1)
    spec, train, _test, _w = make_synth_femnist(cfg)
    assert spec.num_classes == 36
    assert train.y.max() < 36


def test_femnist_invalid_classes():
    with pytest.raises(DataError):
        make_synth_femnist(FemnistConfig(num_classes=99))
