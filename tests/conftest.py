"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, DatasetSpec, FederatedDataset, similarity_partition
from repro.fl.config import FLConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_toy_image_dataset(
    num_samples: int = 120,
    num_classes: int = 4,
    side: int = 8,
    channels: int = 1,
    seed: int = 0,
) -> tuple[DatasetSpec, ArrayDataset]:
    """Tiny learnable image dataset: class-dependent mean + noise."""
    gen = np.random.default_rng(seed)
    labels = gen.integers(0, num_classes, num_samples)
    means = gen.normal(0.0, 1.0, size=(num_classes, channels, side, side))
    x = means[labels] + gen.normal(0.0, 0.3, size=(num_samples, channels, side, side))
    spec = DatasetSpec(
        name="toy",
        kind="image",
        input_shape=(channels, side, side),
        num_classes=num_classes,
    )
    return spec, ArrayDataset(x, labels)


def make_toy_federation(similarity: float, num_clients: int = 4) -> FederatedDataset:
    """Small learnable federation; train/test share class prototypes."""
    spec, full = make_toy_image_dataset(num_samples=220, seed=7)
    gen = np.random.default_rng(1)
    train, test = full.split(160 / 220, gen)
    parts = similarity_partition(train.y, num_clients, similarity, gen)
    return FederatedDataset(
        spec=spec, clients=[train.subset(p) for p in parts], test=test
    )


@pytest.fixture
def toy_federation() -> FederatedDataset:
    """4 clients, fully non-IID split of a small learnable image task."""
    return make_toy_federation(similarity=0.0)


@pytest.fixture
def iid_federation() -> FederatedDataset:
    """4 clients, IID split of the same task."""
    return make_toy_federation(similarity=1.0)


@pytest.fixture
def fast_config() -> FLConfig:
    return FLConfig(rounds=3, local_steps=2, batch_size=16, lr=0.1, seed=3)
