"""Paper-scale architecture fidelity tests.

The benches run scaled-down models; these tests build the *full-size*
paper architectures once, verify their exact parameter inventories, and
push one training step through each — proving the paper-scale
configuration is functional, not just the scaled one.
"""

import numpy as np
import pytest

from repro import nn
from repro.models import build_cnn, build_lstm_classifier
from repro.nn.serialization import num_params


@pytest.fixture(scope="module")
def paper_cnn():
    return build_cnn(1, 28, 10, np.random.default_rng(0), scale=1.0)


def test_paper_cnn_parameter_inventory(paper_cnn):
    """Layer-by-layer parameter count of the FedAvg/paper CNN on 28x28."""
    conv1 = 32 * 1 * 5 * 5 + 32  # 832
    conv2 = 64 * 32 * 5 * 5 + 64  # 51,264
    fc1 = (64 * 7 * 7) * 512 + 512  # 1,606,144
    head = 512 * 10 + 10  # 5,130
    assert num_params(paper_cnn) == conv1 + conv2 + fc1 + head == 1_663_370


def test_paper_cnn_feature_layer_is_512(paper_cnn):
    assert paper_cnn.feature_dim == 512
    x = np.random.default_rng(1).random((2, 1, 28, 28))
    out = paper_cnn.forward(x)
    assert out.shape == (2, 10)
    assert paper_cnn.last_features.shape == (2, 512)


def test_paper_cnn_one_training_step(paper_cnn):
    """One full forward/backward/step at paper scale stays finite."""
    rng = np.random.default_rng(2)
    x = rng.random((4, 1, 28, 28))
    y = rng.integers(0, 10, 4)
    loss_fn = nn.SoftmaxCrossEntropy()
    opt = nn.SGD(paper_cnn.parameters(), lr=0.1)
    loss_before = loss_fn.forward(paper_cnn.forward(x), y)
    paper_cnn.zero_grad()
    paper_cnn.backward(loss_fn.backward())
    opt.step()
    loss_after = loss_fn.forward(paper_cnn.forward(x), y)
    assert np.isfinite(loss_after)
    assert loss_after < loss_before  # a single step on its own batch helps


def test_paper_lstm_parameter_inventory():
    """The Sent140 model: 2-layer LSTM(256) + FC 256 feature layer."""
    vocab, embed = 400, 50
    model = build_lstm_classifier(vocab, 2, np.random.default_rng(0),
                                  embed_dim=embed, hidden_dim=256,
                                  feature_dim=256, num_layers=2)
    emb = vocab * embed
    lstm1 = (embed * 4 * 256) + (256 * 4 * 256) + 4 * 256
    lstm2 = (256 * 4 * 256) + (256 * 4 * 256) + 4 * 256
    fc_feat = 256 * 256 + 256
    head = 256 * 2 + 2
    assert num_params(model) == emb + lstm1 + lstm2 + fc_feat + head


def test_paper_lstm_forward_shapes():
    model = build_lstm_classifier(400, 2, np.random.default_rng(0))
    ids = np.random.default_rng(1).integers(0, 400, size=(3, 12))
    out = model.forward(ids)
    assert out.shape == (3, 2)
    assert model.last_features.shape == (3, 256)


def test_paper_delta_dim_consistency():
    """The delta payload of the paper CNN is 512 floats -> 2048 B at
    float32; Table III's 2808 B corresponds to its reported effective
    d=702 (likely 512 + auxiliary stats).  Our implementation's payload
    is the feature dim exactly."""
    from repro.core.delta import DeltaTable

    table = DeltaTable(20, 512, dtype_bytes=4)
    assert table.per_client_state_bytes(plus=True) == 2048
    assert table.per_client_state_bytes(plus=False) == 20 * 2048
