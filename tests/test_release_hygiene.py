"""Release-hygiene checks: docs, exports, and references stay consistent."""

import importlib
import os
import pkgutil
import re

import pytest

import repro

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))


def _all_modules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize(
    "package",
    ["repro", "repro.nn", "repro.data", "repro.core", "repro.fl",
     "repro.models", "repro.algorithms", "repro.analysis", "repro.experiments"],
)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


def test_readme_referenced_paths_exist():
    with open(os.path.join(REPO_ROOT, "README.md")) as handle:
        readme = handle.read()
    for path in re.findall(r"`(examples/[\w./]+\.py)`", readme):
        assert os.path.exists(os.path.join(REPO_ROOT, path)), path


def test_design_referenced_benches_exist():
    with open(os.path.join(REPO_ROOT, "DESIGN.md")) as handle:
        design = handle.read()
    for path in re.findall(r"`(benchmarks/[\w./]+\.py)`", design):
        assert os.path.exists(os.path.join(REPO_ROOT, path)), path


def test_core_docs_exist_and_are_substantial():
    for name, minimum in [("README.md", 3000), ("DESIGN.md", 5000), ("EXPERIMENTS.md", 5000)]:
        path = os.path.join(REPO_ROOT, name)
        assert os.path.exists(path), name
        assert os.path.getsize(path) > minimum, f"{name} suspiciously small"


def test_version_is_consistent():
    import tomllib

    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
        project = tomllib.load(handle)
    assert project["project"]["version"] == repro.__version__


def test_algorithm_registry_matches_cli_choices():
    from repro.algorithms import ALGORITHMS
    from repro.cli import _build_parser

    parser = _build_parser()
    # Extract the run subparser's --algorithm choices.
    run_parser = parser._subparsers._group_actions[0].choices["run"]
    for action in run_parser._actions:
        if action.dest == "algorithm":
            assert set(action.choices) == set(ALGORITHMS)
            break
    else:  # pragma: no cover
        pytest.fail("run subcommand lost its --algorithm flag")
