"""Statistical comparison tests."""

import numpy as np
import pytest

from repro.analysis.significance import bootstrap_ci, paired_comparison
from repro.exceptions import DataError


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_clear_difference_is_significant():
    a = np.array([0.80, 0.82, 0.81, 0.83, 0.80])
    b = np.array([0.60, 0.62, 0.61, 0.63, 0.60])
    result = paired_comparison(a, b)
    assert result.significant
    assert result.difference == pytest.approx(0.2)
    assert result.ci_low > 0.15


def test_noise_is_not_significant():
    rng = np.random.default_rng(0)
    base = rng.uniform(0.5, 0.9, 6)
    a = base + rng.normal(0, 0.05, 6)
    b = base + rng.normal(0, 0.05, 6)
    result = paired_comparison(a, b)
    assert not result.significant


def test_identical_runs():
    a = np.array([0.5, 0.6, 0.7])
    result = paired_comparison(a, a.copy())
    assert result.difference == 0.0
    assert result.ci_low == result.ci_high == 0.0


def test_validation():
    with pytest.raises(DataError):
        paired_comparison(np.array([0.5]), np.array([0.5]))
    with pytest.raises(DataError):
        paired_comparison(np.zeros(3), np.zeros(4))


def test_bootstrap_ci_contains_mean():
    values = np.array([0.4, 0.5, 0.6, 0.5, 0.45, 0.55])
    lo, hi = bootstrap_ci(values, seed=1)
    assert lo <= values.mean() <= hi
    assert hi - lo < 0.3


def test_bootstrap_ci_deterministic_given_seed():
    values = np.array([0.1, 0.9, 0.5, 0.3])
    assert bootstrap_ci(values, seed=2) == bootstrap_ci(values, seed=2)


def test_bootstrap_validation():
    with pytest.raises(DataError):
        bootstrap_ci(np.array([1.0]))
