"""t-SNE and feature-geometry score tests."""

import numpy as np
import pytest

from repro.analysis.tsne import (
    class_separation_score,
    client_feature_discrepancy,
    tsne,
)
from repro.exceptions import ConfigError


def _two_blobs(rng, n=30, gap=8.0, dim=10):
    a = rng.normal(0.0, 1.0, size=(n, dim))
    b = rng.normal(gap, 1.0, size=(n, dim))
    return np.vstack([a, b]), np.array([0] * n + [1] * n)


def test_tsne_output_shape(rng):
    x, _y = _two_blobs(rng, n=15)
    emb = tsne(x, dim=2, iterations=100)
    assert emb.shape == (30, 2)
    assert np.all(np.isfinite(emb))


def test_tsne_separates_blobs(rng):
    x, y = _two_blobs(rng, n=25)
    emb = tsne(x, iterations=250, seed=1)
    centroid_gap = np.linalg.norm(emb[y == 0].mean(0) - emb[y == 1].mean(0))
    within = np.linalg.norm(emb[y == 0] - emb[y == 0].mean(0), axis=1).mean()
    assert centroid_gap > 2 * within


def test_tsne_centered(rng):
    x, _y = _two_blobs(rng, n=10)
    emb = tsne(x, iterations=60)
    np.testing.assert_allclose(emb.mean(axis=0), 0.0, atol=1e-8)


def test_tsne_deterministic_given_seed(rng):
    x, _y = _two_blobs(rng, n=10)
    a = tsne(x, iterations=50, seed=4)
    b = tsne(x, iterations=50, seed=4)
    np.testing.assert_array_equal(a, b)


def test_tsne_too_few_points():
    with pytest.raises(ConfigError):
        tsne(np.zeros((3, 4)))


def test_class_separation_orders_clean_vs_mixed(rng):
    clean_x, clean_y = _two_blobs(rng, gap=10.0)
    mixed_x, mixed_y = _two_blobs(rng, gap=0.1)
    assert class_separation_score(clean_x, clean_y) > 3 * class_separation_score(
        mixed_x, mixed_y
    )


def test_class_separation_needs_two_classes(rng):
    with pytest.raises(ConfigError):
        class_separation_score(rng.normal(size=(10, 3)), np.zeros(10))


def test_client_discrepancy_zero_when_clients_agree(rng):
    feats = rng.normal(size=(40, 6))
    labels = rng.integers(0, 2, 40)
    # Two clients drawn from the *same* distribution.
    disc = client_feature_discrepancy(
        [feats[:20], feats[20:]], [labels[:20], labels[20:]]
    )
    shifted = client_feature_discrepancy(
        [feats[:20], feats[20:] + 5.0], [labels[:20], labels[20:]]
    )
    assert disc < shifted


def test_client_discrepancy_handles_missing_classes(rng):
    """Clients with label-skewed shards (the Fig. 1 scenario) — classes
    missing on a client are simply skipped."""
    feats_a = rng.normal(size=(10, 4))
    feats_b = rng.normal(size=(10, 4))
    disc = client_feature_discrepancy(
        [feats_a, feats_b], [np.zeros(10, dtype=int), np.ones(10, dtype=int)]
    )
    assert disc == 0.0  # no shared classes -> nothing to compare


def test_client_discrepancy_validates(rng):
    with pytest.raises(ConfigError):
        client_feature_discrepancy([rng.normal(size=(5, 2))], [])
