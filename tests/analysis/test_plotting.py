"""ASCII plotting tests."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_plot, plot_histories, sparkline
from repro.exceptions import ConfigError
from repro.fl.metrics import History, RoundRecord


def test_sparkline_shape_and_extremes():
    out = sparkline(np.array([0.0, 0.5, 1.0]))
    assert len(out) == 3
    assert out[0] == "▁"
    assert out[-1] == "█"


def test_sparkline_constant_series():
    assert sparkline(np.array([2.0, 2.0, 2.0])) == "▁▁▁"


def test_sparkline_empty_raises():
    with pytest.raises(ConfigError):
        sparkline(np.array([]))


def test_ascii_plot_contains_markers_and_legend():
    series = {
        "a": np.array([[0.0, 0.0], [10.0, 1.0]]),
        "b": np.array([[0.0, 1.0], [10.0, 0.0]]),
    }
    out = ascii_plot(series, width=30, height=8)
    assert "*" in out and "o" in out
    assert "legend: * a   o b" in out
    assert out.count("\n") >= 8


def test_ascii_plot_y_axis_range():
    series = {"a": np.array([[0.0, 0.25], [5.0, 0.75]])}
    out = ascii_plot(series, width=20, height=5, y_label="acc")
    assert "acc" in out
    assert "0.750" in out
    assert "0.250" in out


def test_ascii_plot_validation():
    with pytest.raises(ConfigError):
        ascii_plot({})
    with pytest.raises(ConfigError):
        ascii_plot({"bad": np.zeros((0, 2))})
    with pytest.raises(ConfigError):
        ascii_plot({"bad": np.zeros(3)})


def _history(accs):
    hist = History(algorithm="x")
    for i, acc in enumerate(accs):
        hist.append(RoundRecord(round_idx=i, train_loss=1.0 - acc, test_accuracy=acc))
    return hist


def test_plot_histories_accuracy_and_loss():
    histories = {"fedavg": _history([0.1, 0.5, 0.9])}
    out_acc = plot_histories(histories, metric="accuracy", width=20, height=5)
    assert "fedavg" in out_acc
    out_loss = plot_histories(histories, metric="loss", width=20, height=5)
    assert "legend" in out_loss
    with pytest.raises(ConfigError):
        plot_histories(histories, metric="nope")


def test_single_point_series_does_not_crash():
    out = ascii_plot({"p": np.array([[1.0, 0.5]])}, width=10, height=4)
    assert "legend" in out
