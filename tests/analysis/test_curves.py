"""Curve-shape statistic tests."""

import numpy as np
import pytest

from repro.analysis.curves import (
    area_under_curve,
    detrended_oscillation,
    oscillation_score,
    trend_slope,
)
from repro.exceptions import DataError


def _curve(values, start=0):
    rounds = np.arange(start, start + len(values))
    return np.column_stack([rounds, values])


def test_oscillation_zero_on_constant():
    assert oscillation_score(_curve([0.5, 0.5, 0.5, 0.5])) == 0.0


def test_oscillation_ranks_wobbly_above_smooth():
    smooth = _curve([0.1, 0.2, 0.3, 0.4, 0.5])
    wobbly = _curve([0.1, 0.5, 0.1, 0.5, 0.1])
    assert oscillation_score(wobbly) > oscillation_score(smooth)


def test_detrended_oscillation_ignores_steady_growth():
    # A perfectly linear ramp has zero detrended oscillation.
    ramp = _curve(np.linspace(0.1, 0.9, 10))
    assert detrended_oscillation(ramp) == pytest.approx(0.0, abs=1e-12)
    # But raw oscillation is positive (it improves every round).
    assert oscillation_score(ramp) > 0


def test_detrended_oscillation_sees_wobble_on_trend():
    rounds = np.arange(20)
    trend = 0.02 * rounds
    wobble = 0.1 * (-1.0) ** rounds
    assert detrended_oscillation(_curve(trend + wobble)) > 0.05


def test_trend_slope():
    assert trend_slope(_curve([0.0, 0.1, 0.2, 0.3])) == pytest.approx(0.1)
    assert trend_slope(_curve([0.5, 0.5, 0.5])) == pytest.approx(0.0)


def test_auc_ranks_fast_convergence_higher():
    fast = _curve([0.8, 0.9, 0.9, 0.9])
    slow = _curve([0.1, 0.3, 0.6, 0.9])
    assert area_under_curve(fast) > area_under_curve(slow)


def test_auc_of_constant_equals_value():
    assert area_under_curve(_curve([0.7, 0.7, 0.7])) == pytest.approx(0.7)


def test_validation():
    with pytest.raises(DataError):
        oscillation_score(np.zeros((2, 2)))  # too short
    with pytest.raises(DataError):
        oscillation_score(np.zeros(5))  # wrong shape
    with pytest.raises(DataError):
        area_under_curve(np.array([[0, 1.0], [0, 2.0], [0, 3.0]]))  # zero span
