"""Fairness statistics tests."""

import numpy as np
import pytest

from repro.analysis.fairness import fairness_report, gini_coefficient, worst_k_mean


def test_worst_k_mean():
    acc = np.array([0.9, 0.1, 0.5, 0.3])
    assert worst_k_mean(acc, 2) == pytest.approx(0.2)
    assert worst_k_mean(acc, 4) == pytest.approx(0.45)


def test_worst_k_invalid():
    with pytest.raises(ValueError):
        worst_k_mean(np.array([0.5]), 0)


def test_gini_uniform_is_zero():
    assert gini_coefficient(np.full(10, 0.7)) == pytest.approx(0.0, abs=1e-12)


def test_gini_extreme_inequality_near_one():
    values = np.zeros(100)
    values[0] = 1.0
    assert gini_coefficient(values) > 0.9


def test_gini_scale_invariant():
    values = np.array([1.0, 2.0, 3.0])
    assert gini_coefficient(values) == pytest.approx(gini_coefficient(10 * values))


def test_gini_empty_raises():
    with pytest.raises(ValueError):
        gini_coefficient(np.array([]))


def test_gini_all_zero():
    assert gini_coefficient(np.zeros(5)) == 0.0


def test_fairness_report_fields():
    acc = np.array([0.2, 0.4, 0.6, 0.8, 1.0])
    report = fairness_report(acc, worst_k=2)
    assert report["mean"] == pytest.approx(0.6)
    assert report["min"] == pytest.approx(0.2)
    assert report["max"] == pytest.approx(1.0)
    assert report["worst2_mean"] == pytest.approx(0.3)
    assert 0.0 <= report["gini"] <= 1.0
