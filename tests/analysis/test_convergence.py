"""Convergence-theory calculator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import (
    ProblemConstants,
    constant_c1,
    constant_c2,
    constant_c3,
    fedavg_bound,
    theorem1_bound,
    theorem2_bound,
    theory_schedule,
)
from repro.exceptions import ConfigError


def _constants(**overrides):
    base = dict(
        smoothness=4.0,
        strong_convexity=0.5,
        grad_bound=2.0,
        grad_bound_reg=2.5,
        phi_grad_bound=1.5,
        diameter=3.0,
        local_steps=5,
        num_clients=10,
        lam=1e-3,
    )
    base.update(overrides)
    return ProblemConstants(**base)


def test_validation():
    with pytest.raises(ConfigError):
        _constants(smoothness=0.1)  # L < mu
    with pytest.raises(ConfigError):
        _constants(strong_convexity=-1.0)
    with pytest.raises(ConfigError):
        _constants(num_clients=1)
    with pytest.raises(ConfigError):
        _constants(local_steps=0)


def test_kappa_gamma():
    constants = _constants()
    assert constants.kappa == pytest.approx(8.0)
    assert constants.gamma == pytest.approx(64.0)  # max(8*8, 5)
    assert _constants(local_steps=100).gamma == 100.0


def test_theory_schedule_matches_formula():
    constants = _constants()
    sched = theory_schedule(constants)
    assert sched.rate(0) == pytest.approx(2.0 / (0.5 * constants.gamma))
    assert sched.rate(10) == pytest.approx(2.0 / (0.5 * (constants.gamma + 10)))


def test_fedavg_bound_decays_like_one_over_t():
    constants = _constants()
    b10 = fedavg_bound(10, constants, initial_gap=1.0)
    b100 = fedavg_bound(100, constants, initial_gap=1.0)
    b1000 = fedavg_bound(1000, constants, initial_gap=1.0)
    assert b10 > b100 > b1000
    # Asymptotic 1/t: ratio of bounds at 10x horizon approaches 10.
    ratio = b100 / b1000
    assert 5 < ratio < 11


@given(
    st.floats(1.0, 10.0),
    st.floats(0.1, 0.9),
    st.floats(0.5, 5.0),
    st.floats(0.5, 5.0),
    st.floats(0.5, 3.0),
    st.integers(1, 20),
    st.integers(2, 100),
    st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_c2_strictly_below_c3(L, mu, g, gp, h, e_steps, n, lam):
    """The paper's headline theory claim: C2 < C3 for all valid constants."""
    constants = ProblemConstants(
        smoothness=max(L, mu + 0.01),
        strong_convexity=mu,
        grad_bound=g,
        grad_bound_reg=gp,
        phi_grad_bound=h,
        diameter=1.0,
        local_steps=e_steps,
        num_clients=n,
        lam=lam,
    )
    assert constant_c2(constants) < constant_c3(constants)


def test_theorem1_bound_below_theorem2():
    constants = _constants()
    t = 500
    assert theorem1_bound(t, constants, 1.0) < theorem2_bound(t, constants, 1.0)


def test_regularized_bounds_decay():
    constants = _constants()
    b1 = theorem1_bound(100, constants, 1.0)
    b2 = theorem1_bound(1000, constants, 1.0)
    assert b2 < b1


def test_bound_undefined_before_start():
    constants = _constants(local_steps=100)  # gamma = 100
    with pytest.raises(ConfigError):
        theorem1_bound(-1, constants, 1.0)


def test_c1_positive_and_grows_with_e():
    small = constant_c1(_constants(local_steps=1))
    big = constant_c1(_constants(local_steps=20))
    assert 0 < small < big


def test_custom_weights_used():
    uniform = _constants()
    skewed = _constants(weights=np.array([0.9] + [0.1 / 9] * 9))
    # Same total weight -> same constants (they only enter via sum p_k).
    assert constant_c2(uniform) == pytest.approx(constant_c2(skewed))
