"""Constant-estimation tests, validated against analytic ground truth."""

import numpy as np
import pytest

from repro import nn
from repro.analysis.estimation import (
    estimate_curvature_range,
    estimate_embedding_diameter,
    estimate_gradient_bound,
    estimate_phi_gradient_bound,
    estimate_problem_constants,
)
from repro.data.dataset import ArrayDataset, DatasetSpec, FederatedDataset
from repro.exceptions import ConfigError
from repro.models import SplitModel, build_mlp


def _logistic_model(dim, classes, rng):
    """Linear softmax model whose Hessian spectrum we can bound."""
    features = nn.Sequential(nn.Flatten())
    head = nn.Linear(dim, classes, rng=rng)
    return SplitModel(features, head, feature_dim=dim)


def _gaussian_data(rng, n=120, dim=6, classes=3):
    y = rng.integers(0, classes, n)
    means = rng.normal(0, 1.5, size=(classes, dim))
    x = means[y] + rng.normal(0, 0.4, size=(n, dim))
    return ArrayDataset(x.reshape(n, 1, 1, dim), y)


def _federation(rng, clients=3):
    spec = DatasetSpec("t", "image", (1, 1, 6), 3)
    shards = [_gaussian_data(rng, n=40) for _ in range(clients)]
    return FederatedDataset(spec=spec, clients=shards, test=_gaussian_data(rng, n=30))


def test_curvature_range_on_softmax_is_bounded(rng):
    """Softmax cross-entropy curvature lies in [0, lambda_max]; with L2
    weight decay the minimum is at least the decay coefficient."""
    model = _logistic_model(6, 3, rng)
    data = _gaussian_data(rng)
    l2 = 0.05
    mu_hat, l_hat = estimate_curvature_range(model, data, num_probes=25, l2=l2)
    assert mu_hat >= 0.9 * l2  # convex risk + explicit L2 floor
    assert l_hat > mu_hat
    # Softmax CE Hessian spectral norm <= 0.5 * lambda_max(X^T X)/n + l2.
    flat = data.x.reshape(len(data), -1)
    lam_max = np.linalg.eigvalsh(flat.T @ flat / len(data)).max()
    assert l_hat <= 0.5 * lam_max + l2 + 0.1


def test_curvature_validation(rng):
    model = _logistic_model(6, 3, rng)
    with pytest.raises(ConfigError):
        estimate_curvature_range(model, _gaussian_data(rng), num_probes=0)


def test_curvature_restores_parameters(rng):
    from repro.nn.serialization import get_flat_params

    model = _logistic_model(6, 3, rng)
    data = _gaussian_data(rng)
    before = get_flat_params(model)
    estimate_curvature_range(model, data, num_probes=3)
    np.testing.assert_array_equal(get_flat_params(model), before)


def test_gradient_bound_positive_and_scales(rng):
    fed = _federation(rng)
    model = _logistic_model(6, 3, np.random.default_rng(1))
    g = estimate_gradient_bound(model, fed, num_samples=10)
    assert g > 0
    # Scaling the model's logits up (worse fit) cannot shrink the max
    # gradient by much; just check determinism instead of tightness.
    g2 = estimate_gradient_bound(model, fed, num_samples=10)
    assert g == g2  # same seed -> same estimate


def test_phi_gradient_bound_linear_feature_map(rng):
    """For phi = flatten (no parameters), H must be 0; for a linear
    feature layer it is positive."""
    model_flat = _logistic_model(6, 3, rng)
    data = _gaussian_data(rng)
    assert estimate_phi_gradient_bound(model_flat, data) == 0.0
    model_lin = build_mlp(6, 3, rng, (), feature_dim=4)
    h = estimate_phi_gradient_bound(model_lin, data)
    assert h > 0


def test_embedding_diameter_orders_partitions(rng):
    """Label-skewed clients have farther-apart mean embeddings than IID
    clients under the same model."""
    model = build_mlp(6, 3, np.random.default_rng(0), (8,), feature_dim=4)
    spec = DatasetSpec("t", "image", (1, 1, 6), 3)
    data = _gaussian_data(rng, n=150)
    order = np.argsort(data.y)
    skewed = FederatedDataset(
        spec=spec,
        clients=[data.subset(order[:50]), data.subset(order[50:100]), data.subset(order[100:])],
        test=data,
    )
    shuffled = rng.permutation(150)
    iid = FederatedDataset(
        spec=spec,
        clients=[data.subset(shuffled[:50]), data.subset(shuffled[50:100]), data.subset(shuffled[100:])],
        test=data,
    )
    assert estimate_embedding_diameter(model, skewed) > estimate_embedding_diameter(model, iid)


def test_estimate_problem_constants_is_valid(rng):
    fed = _federation(rng)
    model = build_mlp(6, 3, np.random.default_rng(2), (8,), feature_dim=4)
    constants = estimate_problem_constants(model, fed, local_steps=5, lam=1e-3)
    assert constants.smoothness >= constants.strong_convexity > 0
    assert constants.grad_bound > 0
    assert constants.grad_bound_reg >= constants.grad_bound
    assert constants.num_clients == 3
    # The estimated constants must instantiate the bounds without error.
    from repro.analysis.convergence import theorem1_bound, theorem2_bound

    assert theorem1_bound(500, constants, 1.0) > 0
    assert theorem2_bound(500, constants, 1.0) >= theorem1_bound(500, constants, 1.0)
