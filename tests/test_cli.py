"""CLI tests."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rfedavg+" in out
    assert "synth_cifar" in out


def test_experiments_command(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Fig. 12" in out


def test_run_command_minimal(capsys):
    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--eval-every", "1", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final accuracy" in out
    assert "total traffic" in out


def test_run_command_regularized(capsys):
    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "rfedavg+",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--lam", "0.001", "--scale", "0.25",
    ])
    assert code == 0


def test_run_command_sequence_dataset_defaults_to_lstm(capsys):
    code = main([
        "run", "--dataset", "synth_sent140", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "1", "--local-steps", "1",
        "--batch-size", "4", "--optimizer", "rmsprop", "--lr", "0.01",
        "--scale", "0.1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final accuracy" in out


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--algorithm", "magic"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_sweep_algorithm_param(capsys):
    code = main([
        "sweep", "--dataset", "synth_mnist", "--algorithm", "rfedavg+",
        "--knob", "lam", "--values", "0,0.001",
        "--clients", "4", "--rounds", "2", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "best: lam=" in out
    assert "accuracy" in out


def test_sweep_config_field(capsys):
    code = main([
        "sweep", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--knob", "local_steps", "--values", "1,2",
        "--clients", "4", "--rounds", "2", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "local_steps" in out


def test_sweep_bad_values_rejected():
    with pytest.raises(SystemExit):
        main([
            "sweep", "--knob", "lam", "--values", "a,b",
            "--clients", "4", "--rounds", "1",
        ])
