"""CLI tests."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rfedavg+" in out
    assert "synth_cifar" in out


def test_experiments_command(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Fig. 12" in out


def test_run_command_minimal(capsys):
    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--eval-every", "1", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final accuracy" in out
    assert "total traffic" in out


def test_run_command_regularized(capsys):
    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "rfedavg+",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--lam", "0.001", "--scale", "0.25",
    ])
    assert code == 0


def test_run_command_sequence_dataset_defaults_to_lstm(capsys):
    code = main([
        "run", "--dataset", "synth_sent140", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "1", "--local-steps", "1",
        "--batch-size", "4", "--optimizer", "rmsprop", "--lr", "0.01",
        "--scale", "0.1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final accuracy" in out


def test_run_command_trace_prints_phase_table(capsys):
    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--eval-every", "1", "--scale", "0.25",
        "--trace",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "train_loss" in out  # per-round table
    assert "local_train" in out  # span summary
    assert "aggregate" in out


def test_run_command_trace_out_writes_artifacts(capsys, tmp_path):
    import json

    from repro.fl.metrics import History

    code = main([
        "run", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--eval-every", "1", "--scale", "0.25",
        "--trace-out", str(tmp_path),
    ])
    assert code == 0
    out_dir = tmp_path / "fedavg-synth_mnist-seed0"
    assert {p.name for p in out_dir.iterdir()} == {
        "summary.json", "rounds.csv", "events.jsonl"
    }
    events = [json.loads(l) for l in (out_dir / "events.jsonl").open()]
    span_names = {e["name"] for e in events if e["type"] == "span"}
    assert {"round", "sample", "local_train", "aggregate", "eval"} <= span_names
    counters = {e["key"] for e in events if e["type"] == "counter"}
    assert "comm.bytes{direction=down}" in counters
    history = History.from_json((out_dir / "summary.json").read_text())
    assert len(history.records) == 2


def _run_args(extra):
    return [
        "run", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--clients", "4", "--rounds", "2", "--local-steps", "1",
        "--batch-size", "8", "--scale", "0.25", *extra,
    ]


def test_run_command_checkpoints_and_resumes(capsys, tmp_path):
    ckpt = tmp_path / "ckpt"
    assert main(_run_args(["--checkpoint-dir", str(ckpt)])) == 0
    first = capsys.readouterr().out
    assert sorted(p.name for p in ckpt.glob("ckpt-*.rck"))
    # Crash simulation: the newest checkpoint vanishes, resume replays
    # the lost round and lands on the same numbers.
    (ckpt / "ckpt-00000001.rck").unlink()
    assert main(_run_args(["--checkpoint-dir", str(ckpt), "--resume"])) == 0
    second = capsys.readouterr().out

    def final_accuracy(out):
        return [l for l in out.splitlines() if "final accuracy" in l]

    assert final_accuracy(first) == final_accuracy(second)


def test_run_command_checkpoint_cadence(tmp_path):
    ckpt = tmp_path / "ckpt"
    args = _run_args(["--checkpoint-dir", str(ckpt), "--checkpoint-every", "2"])
    args[args.index("--rounds") + 1] = "3"
    assert main(args) == 0
    # Rounds 2 (cadence) and 3 (final) checkpoint; round 1 does not.
    assert sorted(p.name for p in ckpt.glob("ckpt-*.rck")) == [
        "ckpt-00000001.rck", "ckpt-00000002.rck"
    ]


def test_run_command_resume_requires_checkpoint_dir():
    with pytest.raises(SystemExit):
        main(_run_args(["--resume"]))


def test_summary_artifact_carries_provenance(tmp_path):
    import json

    assert main(_run_args(["--trace-out", str(tmp_path)])) == 0
    summary = json.loads(
        (tmp_path / "fedavg-synth_mnist-seed0" / "summary.json").read_text()
    )
    prov = summary["provenance"]
    assert prov["algorithm"] == "fedavg"
    assert set(prov) >= {"repro_version", "config_hash", "seed", "dtype"}


def test_preset_command(capsys):
    code = main([
        "preset", "quickstart", "--seed", "1",
        "--set", "rounds=2", "--set", "local_steps=1", "--set", "clients=4",
        "--set", "num_train=160", "--set", "num_test=60",
        "--set", "scale=0.25", "--set", "batch_size=8",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final accuracy" in out


def test_preset_command_bad_override_rejected():
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        main(["preset", "quickstart", "--set", "rounds"])


def test_preset_unknown_name_rejected():
    with pytest.raises(SystemExit):
        main(["preset", "not-a-preset"])


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--algorithm", "magic"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_sweep_algorithm_param(capsys):
    code = main([
        "sweep", "--dataset", "synth_mnist", "--algorithm", "rfedavg+",
        "--knob", "lam", "--values", "0,0.001",
        "--clients", "4", "--rounds", "2", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "best: lam=" in out
    assert "accuracy" in out


def test_sweep_config_field(capsys):
    code = main([
        "sweep", "--dataset", "synth_mnist", "--algorithm", "fedavg",
        "--knob", "local_steps", "--values", "1,2",
        "--clients", "4", "--rounds", "2", "--scale", "0.25",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "local_steps" in out


def test_sweep_bad_values_rejected():
    with pytest.raises(SystemExit):
        main([
            "sweep", "--knob", "lam", "--values", "a,b",
            "--clients", "4", "--rounds", "1",
        ])
