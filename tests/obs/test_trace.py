"""Span tracer tests."""

import threading

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def test_sequential_spans_become_separate_roots():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert [root.name for root in tracer.roots] == ["a", "b"]


def test_nested_spans_build_a_tree():
    tracer = Tracer()
    with tracer.span("round", round=0):
        with tracer.span("local_train", client=1):
            with tracer.span("regularizer"):
                pass
        with tracer.span("aggregate"):
            pass
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert root.name == "round"
    assert root.attrs == {"round": 0}
    assert [c.name for c in root.children] == ["local_train", "aggregate"]
    assert [g.name for g in root.children[0].children] == ["regularizer"]


def test_span_durations_are_recorded_and_nested_sum_is_bounded():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            sum(range(1000))
    outer = tracer.roots[0]
    inner = outer.children[0]
    assert outer.duration >= inner.duration >= 0.0


def test_span_set_attaches_attributes_mid_span():
    tracer = Tracer()
    with tracer.span("work") as span:
        span.set(items=3)
    assert tracer.roots[0].attrs["items"] == 3


def test_exception_marks_span_and_unwinds_stack():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("round"):
            with tracer.span("local_train"):
                raise ValueError("boom")
    # Both spans closed despite the exception; the failing one is marked.
    root = tracer.roots[0]
    assert root.name == "round"
    assert root.children[0].attrs["error"] == "ValueError"
    # A fresh span after the exception nests at root level again.
    with tracer.span("next"):
        pass
    assert [r.name for r in tracer.roots] == ["round", "next"]


def test_walk_yields_depth_and_path():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    entries = [(span.name, depth, path) for span, depth, path in tracer.walk()]
    assert entries == [("a", 0, "a"), ("b", 1, "a/b")]


def test_find_returns_spans_by_name():
    tracer = Tracer()
    for client in range(3):
        with tracer.span("local_train", client=client):
            pass
    found = tracer.find("local_train")
    assert [span.attrs["client"] for span in found] == [0, 1, 2]
    assert tracer.find("nope") == []


def test_span_summary_aggregates_per_name():
    tracer = Tracer()
    for _ in range(4):
        with tracer.span("phase"):
            pass
    summary = tracer.span_summary()
    assert summary["phase"]["count"] == 4
    assert summary["phase"]["total_sec"] >= summary["phase"]["max_sec"]
    assert summary["phase"]["mean_sec"] == pytest.approx(
        summary["phase"]["total_sec"] / 4
    )


def test_threads_nest_on_their_own_stacks():
    tracer = Tracer()
    barrier = threading.Barrier(4)

    def worker(idx: int) -> None:
        # All four threads are inside their outer span at the same time;
        # the inner span must still attach to the same thread's outer.
        with tracer.span("outer", thread=idx):
            barrier.wait(timeout=5)
            with tracer.span("inner", thread=idx):
                pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.roots) == 4
    for root in tracer.roots:
        assert root.name == "outer"
        assert len(root.children) == 1
        assert root.children[0].attrs["thread"] == root.attrs["thread"]


def test_on_round_mirrors_record_into_metrics():
    from repro.fl.metrics import RoundRecord

    tracer = Tracer()
    tracer.on_round(RoundRecord(round_idx=0, train_loss=0.5, reg_loss=0.1,
                                wall_time_sec=0.2, num_selected=4,
                                test_accuracy=0.75))
    tracer.on_round(RoundRecord(round_idx=1, train_loss=0.4, num_selected=4))
    snap = tracer.metrics.snapshot()
    assert snap["counters"]["rounds.completed"] == 2
    assert snap["gauges"]["round.train_loss"] == 0.4
    assert snap["gauges"]["round.test_accuracy"] == 0.75  # kept from round 0
    assert snap["histograms"]["round.num_selected"]["count"] == 2


def test_span_to_dict_round_structure():
    tracer = Tracer()
    with tracer.span("round", round=1):
        with tracer.span("eval"):
            pass
    d = tracer.roots[0].to_dict()
    assert d["name"] == "round"
    assert d["attrs"] == {"round": 1}
    assert d["children"][0]["name"] == "eval"
    assert "children" not in d["children"][0]


def test_null_tracer_is_inert_and_shared():
    assert NULL_TRACER.enabled is False
    span_a = NULL_TRACER.span("x", attr=1)
    span_b = NULL_TRACER.span("y")
    assert span_a is span_b  # one shared no-op instance, no allocation
    with span_a as inside:
        assert inside is span_a
    assert NULL_TRACER.roots == ()
    assert list(NULL_TRACER.walk()) == []
    assert NULL_TRACER.find("x") == []
    assert NULL_TRACER.span_summary() == {}
    NULL_TRACER.on_round(object())  # accepts anything, records nothing
    assert NULL_TRACER.metrics.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "quantiles": {},
    }


def test_null_tracer_survives_exceptions_silently():
    with pytest.raises(RuntimeError):
        with NullTracer().span("x"):
            raise RuntimeError("boom")
