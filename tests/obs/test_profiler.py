"""Layer profiler tests."""

import numpy as np
import pytest

from repro.models import build_mlp
from repro.obs.profiler import LayerProfiler, _leaf_modules


def _model(seed=0):
    return build_mlp(16, 4, np.random.default_rng(seed), (8,), feature_dim=8)


def _batch(n=5):
    return np.random.default_rng(1).normal(size=(n, 16))


def test_leaf_modules_finds_every_layer():
    names = [type(m).__name__ for m in _leaf_modules(_model())]
    assert names == ["Flatten", "Linear", "ReLU", "Linear", "ReLU", "Linear"]


def test_profile_attributes_time_per_layer_type():
    model = _model()
    profiler = LayerProfiler()
    x = _batch()
    with profiler.profile(model):
        logits = model.forward(x)
        model.backward(np.ones_like(logits) / len(x))
    totals = profiler.totals()
    assert set(totals) == {"Flatten", "Linear", "ReLU"}
    assert totals["Linear"]["calls"] == 3  # three Linear leaves, one pass
    assert totals["ReLU"]["calls"] == 2
    assert totals["Linear"]["forward_sec"] > 0
    assert totals["Linear"]["backward_sec"] > 0


def test_detach_restores_unpatched_methods():
    model = _model()
    profiler = LayerProfiler()
    profiler.attach(model)
    leaves = _leaf_modules(model)
    assert all("forward" in leaf.__dict__ for leaf in leaves)
    profiler.detach()
    assert all("forward" not in leaf.__dict__ for leaf in leaves)
    assert all("backward" not in leaf.__dict__ for leaf in leaves)


def test_profiled_model_is_numerically_identical():
    x = _batch()
    plain = _model().forward(x)
    model = _model()
    with LayerProfiler().profile(model):
        profiled = model.forward(x)
    np.testing.assert_array_equal(plain, profiled)
    np.testing.assert_array_equal(model.forward(x), plain)  # after detach


def test_double_attach_rejected():
    model = _model()
    profiler = LayerProfiler()
    profiler.attach(model)
    with pytest.raises(RuntimeError):
        profiler.attach(model)
    profiler.detach()
    profiler.attach(model)  # fine again after detach
    profiler.detach()


def test_detach_happens_even_on_exception():
    model = _model()
    profiler = LayerProfiler()
    with pytest.raises(ValueError):
        with profiler.profile(model):
            raise ValueError("boom")
    assert profiler._patched == []
    assert "forward" not in _leaf_modules(model)[0].__dict__


def test_report_renders_table():
    model = _model()
    profiler = LayerProfiler()
    x = _batch()
    with profiler.profile(model):
        model.forward(x)
        model.backward(np.ones((len(x), 4)) / len(x))
    report = profiler.report()
    assert report.splitlines()[0].split() == ["layer", "calls", "fwd_ms", "bwd_ms"]
    assert "Linear" in report
    assert LayerProfiler().report() == "(no layers profiled)"


def test_profiler_shares_external_registry():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    model = _model()
    with LayerProfiler(metrics=registry).profile(model):
        model.forward(_batch())
    keys = [k for k in registry.histograms if k.startswith("layer.forward_sec")]
    assert "layer.forward_sec{layer=Linear}" in keys
