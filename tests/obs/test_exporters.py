"""Exporter / artifact tests."""

import json

from repro.fl.metrics import History, RoundRecord
from repro.obs.exporters import (
    format_round_table,
    format_span_summary,
    iter_events,
    read_jsonl,
    summary_dict,
    write_jsonl,
    write_run_artifacts,
)
from repro.obs.trace import NULL_TRACER, Tracer


def _traced_round():
    tracer = Tracer()
    with tracer.span("round", round=0):
        with tracer.span("sample"):
            pass
        for client in range(2):
            with tracer.span("local_train", client=client):
                pass
        with tracer.span("aggregate"):
            pass
    tracer.metrics.counter("comm.bytes", direction="down").inc(100)
    tracer.metrics.gauge("round.train_loss").set(0.5)
    tracer.metrics.histogram("round.num_selected").observe(2)
    return tracer


def _small_history():
    hist = History(algorithm="fedavg")
    hist.append(RoundRecord(0, 0.9, bytes_down=100, bytes_up=50,
                            test_accuracy=0.5, test_loss=0.7,
                            wall_time_sec=0.01, num_selected=2))
    hist.append(RoundRecord(1, 0.7, bytes_down=100, bytes_up=50,
                            wall_time_sec=0.01, num_selected=2))
    hist.final_accuracy = 0.5
    return hist


def test_iter_events_flattens_spans_with_paths():
    events = iter_events(_traced_round())
    spans = [e for e in events if e["type"] == "span"]
    assert [s["path"] for s in spans] == [
        "round", "round/sample", "round/local_train", "round/local_train",
        "round/aggregate",
    ]
    assert spans[0]["depth"] == 0 and spans[1]["depth"] == 1
    assert spans[2]["attrs"] == {"client": 0}
    kinds = {e["type"] for e in events}
    assert kinds == {"span", "counter", "gauge", "histogram"}


def test_jsonl_round_trip(tmp_path):
    tracer = _traced_round()
    path = write_jsonl(tmp_path / "events.jsonl", tracer)
    assert read_jsonl(path) == iter_events(tracer)


def test_summary_dict_embeds_trace_section():
    summary = summary_dict(_small_history(), _traced_round())
    assert summary["algorithm"] == "fedavg"
    assert summary["trace"]["spans"]["local_train"]["count"] == 2
    assert summary["trace"]["metrics"]["counters"][
        "comm.bytes{direction=down}"
    ] == 100
    json.dumps(summary)


def test_summary_dict_without_tracer_is_plain_history():
    summary = summary_dict(_small_history())
    assert "trace" not in summary
    assert summary_dict(_small_history(), NULL_TRACER) == summary


def test_summary_json_reloads_exactly_via_history_from_json(tmp_path):
    history = _small_history()
    out = write_run_artifacts(tmp_path / "run", history, _traced_round())
    reloaded = History.from_json((out / "summary.json").read_text())
    assert reloaded.to_dict() == history.to_dict()


def test_write_run_artifacts_files(tmp_path):
    out = write_run_artifacts(tmp_path / "run", _small_history(), _traced_round())
    assert {p.name for p in out.iterdir()} == {
        "summary.json", "rounds.csv", "events.jsonl"
    }


def test_write_run_artifacts_without_tracer_skips_events(tmp_path):
    out = write_run_artifacts(tmp_path / "run", _small_history())
    assert {p.name for p in out.iterdir()} == {"summary.json", "rounds.csv"}
    out_null = write_run_artifacts(tmp_path / "run2", _small_history(), NULL_TRACER)
    assert {p.name for p in out_null.iterdir()} == {"summary.json", "rounds.csv"}


def test_format_round_table_lists_every_round():
    table = format_round_table(_small_history())
    lines = table.splitlines()
    assert len(lines) == 4  # header + rule + 2 rounds
    assert "0.5000" in lines[2]  # round 0 accuracy
    assert lines[3].split()[2] == "-"  # round 1 was not evaluated


def test_format_span_summary_orders_by_total_time():
    text = format_span_summary(_traced_round())
    assert text.splitlines()[2].split()[0] == "round"  # heaviest = the root
    assert "local_train" in text
    assert format_span_summary(Tracer()) == "(no spans recorded)"
