"""Quantile (reservoir percentile) metric tests."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry, NullMetrics, Quantile


def test_exact_percentiles_below_capacity():
    q = Quantile("latency")
    for v in range(1, 101):  # 1..100
        q.observe(float(v))
    assert q.percentile(50.0) == 50.0
    assert q.percentile(95.0) == 95.0
    assert q.percentile(99.0) == 99.0
    assert q.percentile(0.0) == 1.0
    assert q.percentile(100.0) == 100.0


def test_summary_fields():
    q = Quantile("latency")
    for v in (2.0, 4.0, 6.0):
        q.observe(v)
    summary = q.summary()
    assert summary["count"] == 3
    assert summary["sum"] == 12.0
    assert summary["mean"] == 4.0
    assert summary["min"] == 2.0 and summary["max"] == 6.0
    assert summary["p50"] == 4.0


def test_empty_summary_is_well_formed():
    summary = Quantile("latency").summary()
    assert summary["count"] == 0
    assert summary["p50"] is None and summary["p99"] is None
    assert math.isnan(Quantile("latency").percentile(50.0))


def test_reservoir_is_bounded_and_min_max_exact():
    q = Quantile("latency")
    n = Quantile.CAPACITY * 3
    for v in range(n):
        q.observe(float(v))
    assert len(q.samples) == Quantile.CAPACITY
    assert q.count == n
    assert q.min == 0.0 and q.max == float(n - 1)
    # The sampled p50 must sit near the true median for a uniform ramp.
    assert abs(q.percentile(50.0) - (n - 1) / 2) < n * 0.1


def test_replacement_is_deterministic():
    """Two identical observation streams leave identical reservoirs —
    the LCG is private state, not a shared RNG."""
    a, b = Quantile("x"), Quantile("x")
    for v in range(Quantile.CAPACITY * 2):
        a.observe(float(v % 977))
        b.observe(float(v % 977))
    assert a.samples == b.samples
    assert a._lcg == b._lcg


def test_observe_never_touches_global_rngs():
    import random

    import numpy as np

    random.seed(7)
    np.random.seed(7)
    expected_py = random.Random(7).random()
    q = Quantile("x")
    for v in range(Quantile.CAPACITY + 100):
        q.observe(float(v))
    assert random.random() == expected_py
    assert np.random.get_state()[1][0] == np.random.RandomState(7).get_state()[1][0]


# -- registry integration ---------------------------------------------------------


def test_registry_memoizes_and_snapshots():
    registry = MetricsRegistry()
    registry.quantile("serve.latency").observe(1.0)
    registry.quantile("serve.latency").observe(3.0)
    assert registry.quantile("serve.latency").count == 2
    snapshot = registry.snapshot()
    assert snapshot["quantiles"]["serve.latency"]["count"] == 2
    assert snapshot["quantiles"]["serve.latency"]["p50"] == 1.0


def test_state_dict_restore_continues_the_stream_exactly():
    a = MetricsRegistry()
    q = a.quantile("lat")
    for v in range(Quantile.CAPACITY + 50):
        q.observe(float(v))
    b = MetricsRegistry()
    b.restore_state(a.state_dict())
    # Continue both streams identically: reservoirs must stay identical,
    # which requires count, samples AND the LCG state to have survived.
    for v in range(200):
        a.quantile("lat").observe(float(v) * 0.5)
        b.quantile("lat").observe(float(v) * 0.5)
    assert a.quantile("lat").samples == b.quantile("lat").samples
    assert a.snapshot() == b.snapshot()


def test_restore_of_pre_quantile_checkpoint():
    """Checkpoints written before quantiles existed restore cleanly."""
    registry = MetricsRegistry()
    registry.restore_state({"counters": {"x": 2}, "gauges": {}, "histograms": {}})
    assert registry.counter("x").value == 2
    assert registry.snapshot()["quantiles"] == {}


def test_null_metrics_quantile_is_a_sink():
    null = NullMetrics()
    null.quantile("anything").observe(1.0)
    assert null.snapshot()["quantiles"] == {}


def test_exporter_emits_quantile_events():
    from repro.obs.exporters import iter_events

    registry = MetricsRegistry()
    registry.quantile("serve.latency").observe(2.0)

    class _Stub:
        metrics = registry

        def walk(self):
            return ()

    events = [e for e in iter_events(_Stub()) if e.get("type") == "quantile"]
    assert events and events[0]["key"] == "serve.latency"
    assert events[0]["p50"] == 2.0
