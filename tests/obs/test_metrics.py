"""Metrics registry tests."""

import math

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    _key,
)


def test_key_formatting_sorts_labels():
    assert _key("comm.bytes", {}) == "comm.bytes"
    assert _key("comm.bytes", {"kind": "model", "direction": "up"}) == (
        "comm.bytes{direction=up,kind=model}"
    )


def test_counter_accumulates_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("loss")
    gauge.set(0.5)
    gauge.set(0.25)
    assert gauge.value == 0.25


def test_histogram_streaming_statistics():
    hist = Histogram("h")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean() == pytest.approx(2.5)
    assert hist.std() == pytest.approx(math.sqrt(1.25))
    assert hist.min == 1.0 and hist.max == 4.0
    summary = hist.summary()
    assert summary["count"] == 4 and summary["sum"] == pytest.approx(10.0)


def test_empty_histogram_summary_is_none_safe():
    summary = Histogram("h").summary()
    assert summary["count"] == 0
    assert summary["mean"] is None and summary["min"] is None


def test_registry_memoizes_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("comm.bytes", direction="up")
    b = registry.counter("comm.bytes", direction="up")
    c = registry.counter("comm.bytes", direction="down")
    assert a is b
    assert a is not c
    a.inc(10)
    assert registry.counter("comm.bytes", direction="up").value == 10


def test_snapshot_is_json_safe_and_sorted():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(0.5)
    registry.histogram("h").observe(1.0)
    snap = registry.snapshot()
    json.dumps(snap)
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["gauges"]["g"] == 0.5
    assert snap["histograms"]["h"]["count"] == 1


def test_null_metrics_accepts_everything_keeps_nothing():
    NULL_METRICS.counter("x", any_label=1).inc(5)
    NULL_METRICS.gauge("y").set(1.0)
    NULL_METRICS.histogram("z").observe(2.0)
    NULL_METRICS.quantile("q").observe(3.0)
    assert NULL_METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "quantiles": {},
    }
    # Shared instance: accessors allocate nothing per call.
    assert NULL_METRICS.counter("x") is NULL_METRICS.gauge("y")
