"""Unit tests for the client-execution engine (:mod:`repro.fl.parallel`)."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.parallel import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fl.trainer import run_federated
from repro.obs.trace import Tracer
from tests.conftest import make_toy_federation
from tests.helpers import tiny_model_fn


def _config(**overrides) -> FLConfig:
    base = dict(rounds=2, local_steps=2, batch_size=8, lr=0.1, seed=5)
    base.update(overrides)
    return FLConfig(**base)


# -- make_executor / config plumbing ---------------------------------------------


def test_make_executor_auto_serial_when_single_worker():
    assert isinstance(make_executor(_config()), SerialExecutor)


def test_make_executor_auto_process_when_multiple_workers(monkeypatch):
    import repro.fl.parallel as parallel_module

    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
    executor = make_executor(_config(num_workers=3))
    assert isinstance(executor, ParallelExecutor)
    assert executor.num_workers == 3
    assert not executor.chunked


def test_make_executor_auto_serial_on_single_core(monkeypatch):
    """'auto' resolves to serial on a 1-CPU box — a process pool there
    only adds IPC overhead.  Explicit executor='process' still wins (and
    gets the parallel_hint span instead)."""
    import repro.fl.parallel as parallel_module

    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
    assert isinstance(make_executor(_config(num_workers=4)), SerialExecutor)
    forced = make_executor(_config(num_workers=4, executor="process"))
    assert isinstance(forced, ParallelExecutor)


def test_make_executor_auto_serial_when_cpu_count_unknown(monkeypatch):
    import repro.fl.parallel as parallel_module

    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
    assert isinstance(make_executor(_config(num_workers=4)), SerialExecutor)


def test_make_executor_forced_modes():
    assert isinstance(make_executor(_config(num_workers=4, executor="serial")), SerialExecutor)
    process = make_executor(_config(num_workers=4, executor="process"))
    assert isinstance(process, ParallelExecutor) and not process.chunked
    chunked = make_executor(_config(num_workers=4, executor="chunked"))
    assert isinstance(chunked, ParallelExecutor) and chunked.chunked


def test_config_rejects_bad_executor_settings():
    with pytest.raises(ConfigError):
        _config(num_workers=0)
    with pytest.raises(ConfigError):
        _config(executor="threads")


def test_parallel_executor_rejects_bad_worker_count():
    with pytest.raises(ConfigError):
        ParallelExecutor(0)


# -- scheduling ------------------------------------------------------------------


def test_singleton_tasks_one_per_client():
    executor = ParallelExecutor(2)
    tasks = executor._tasks([10, 11, 12])
    assert tasks == [[(0, 10)], [(1, 11)], [(2, 12)]]


def test_chunked_tasks_contiguous_and_complete():
    executor = ParallelExecutor(2, chunked=True)
    tasks = executor._tasks([10, 11, 12, 13, 14])
    assert tasks == [[(0, 10), (1, 11), (2, 12)], [(3, 13), (4, 14)]]


def test_chunked_tasks_never_exceed_client_count():
    executor = ParallelExecutor(8, chunked=True)
    tasks = executor._tasks([1, 2])
    assert tasks == [[(0, 1)], [(1, 2)]]


# -- executor wiring -------------------------------------------------------------


def test_setup_builds_executor_from_config():
    fed = make_toy_federation(similarity=0.0)
    algorithm = FedAvg()
    # executor='process' explicitly: 'auto' resolves to serial on a
    # single-core machine, which would make this test box-dependent.
    run_federated(
        algorithm, fed, tiny_model_fn(fed),
        _config(num_workers=2, rounds=1, executor="process"),
    )
    assert isinstance(algorithm.executor, ParallelExecutor)


def test_with_executor_overrides_config():
    fed = make_toy_federation(similarity=0.0)
    injected = SerialExecutor()
    algorithm = FedAvg().with_executor(injected)
    run_federated(algorithm, fed, tiny_model_fn(fed), _config(num_workers=4, rounds=1))
    assert algorithm.executor is injected


def test_empty_selection_returns_empty():
    assert ParallelExecutor(2).run(FedAvg(), 0, []) == []


# -- degradation -----------------------------------------------------------------


def test_fork_unavailable_degrades_to_serial(monkeypatch):
    monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: ["spawn"])
    fed = make_toy_federation(similarity=0.0)
    serial_alg = FedAvg()
    run_federated(serial_alg, fed, tiny_model_fn(fed), _config())

    parallel_alg = FedAvg()
    with pytest.warns(RuntimeWarning, match="fork"):
        run_federated(
            parallel_alg, fed, tiny_model_fn(fed),
            _config(num_workers=4, executor="process"),
        )
    assert parallel_alg.executor.degraded
    np.testing.assert_array_equal(serial_alg.global_params, parallel_alg.global_params)


# -- observability ---------------------------------------------------------------


def test_traced_parallel_run_preserves_span_structure_and_reports_workers():
    fed = make_toy_federation(similarity=0.0)
    tracer = Tracer()
    algorithm = FedAvg()
    run_federated(
        algorithm, fed, tiny_model_fn(fed),
        _config(num_workers=2, rounds=2, executor="process"), tracer=tracer,
    )
    rounds = tracer.find("round")
    assert len(rounds) == 2
    for round_span in rounds:
        locals_ = [c for c in round_span.children if c.name == "local_train"]
        assert [c.attrs["client"] for c in locals_] == [0, 1, 2, 3]
        for child in locals_:
            # Spans re-emitted by the parent carry the worker pid and the
            # worker-measured duration.
            assert child.attrs["worker"] > 0
            assert child.duration >= 0.0

    workers_gauge = tracer.metrics.gauge("parallel.workers")
    assert workers_gauge.value == 2
    speedup_gauge = tracer.metrics.gauge("parallel.speedup")
    assert speedup_gauge.value > 0.0


def test_traced_serial_run_has_no_worker_attribute():
    fed = make_toy_federation(similarity=0.0)
    tracer = Tracer()
    run_federated(FedAvg(), fed, tiny_model_fn(fed), _config(rounds=1), tracer=tracer)
    locals_ = tracer.find("local_train")
    assert locals_ and all("worker" not in span.attrs for span in locals_)


# -- slowdown hint ----------------------------------------------------------------


def _fake_updates(train_seconds: float, n: int = 3) -> list:
    from repro.fl.parallel import ClientUpdate

    return [
        ClientUpdate(
            client_id=i, params=np.zeros(2), wire=2, task_loss=0.0,
            reg_loss=0.0, num_steps=1, train_seconds=train_seconds, worker=100 + i,
        )
        for i in range(n)
    ]


def test_slowdown_round_emits_hint_and_counter():
    """When worker busy time is below round wall time (the CPU-bound
    single-core regime), the executor should say so via obs."""
    executor = ParallelExecutor(2)
    tracer = Tracer()
    # 3 clients x 0.1s busy inside a 1.0s round: speedup 0.3.
    executor._record_metrics(tracer, _fake_updates(0.1), elapsed=1.0)

    assert tracer.metrics.gauge("parallel.speedup").value == pytest.approx(0.3)
    assert tracer.metrics.counter("parallel.slowdown_rounds").value == 1
    hints = tracer.find("parallel_hint")
    assert len(hints) == 1
    assert "serial" in hints[0].attrs["hint"]
    assert hints[0].attrs["speedup"] == pytest.approx(0.3, abs=1e-3)


def test_genuine_speedup_emits_no_hint():
    executor = ParallelExecutor(2)
    tracer = Tracer()
    # 3 clients x 1s busy inside a 1.5s round: speedup 2.0.
    executor._record_metrics(tracer, _fake_updates(1.0), elapsed=1.5)

    assert tracer.metrics.gauge("parallel.speedup").value == pytest.approx(2.0)
    assert tracer.metrics.counter("parallel.slowdown_rounds").value == 0
    assert tracer.find("parallel_hint") == []


def test_untraced_run_records_nothing():
    from repro.obs.trace import NULL_TRACER

    executor = ParallelExecutor(2)
    # Must not raise, and must stay allocation-free on the null path.
    executor._record_metrics(NULL_TRACER, _fake_updates(0.1), elapsed=1.0)
