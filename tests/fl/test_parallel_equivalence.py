"""Serial/parallel equivalence matrix for the client-execution engine.

Every registered algorithm runs the same 3-round job twice — once with
``num_workers=1`` (the serial reference) and once with a process pool —
and the results must be bit-identical: final global parameters, every
History field except wall time, and the per-round ledger totals.

The worker count defaults to 4 and can be overridden with the
``REPRO_EQUIV_WORKERS`` environment variable (CI runs the matrix at 2).
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms import ALGORITHMS
from repro.fl.config import FLConfig
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers

WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "4"))

# (name, constructor kwargs, slow?) — one row per registered algorithm.
MATRIX = [
    ("fedavg", {}, False),
    ("fedavgm", {}, False),
    ("fednova", {}, False),
    ("fedprox", {"mu": 0.1}, False),
    ("moon", {"mu": 0.5}, True),
    ("scaffold", {}, False),
    ("qfedavg", {"q": 1.0}, False),
    ("rfedavg", {"lam": 1e-3}, True),
    ("rfedavg+", {"lam": 1e-3}, False),
    ("rfedavg_exact", {"lam": 1e-3}, True),
]


def _config(**overrides) -> FLConfig:
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=11)
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def test_matrix_covers_every_registered_algorithm():
    """A new algorithm must be added to the equivalence matrix."""
    assert {name for name, _, _ in MATRIX} == set(ALGORITHMS)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in MATRIX
    ],
)
def test_parallel_run_is_bit_identical_to_serial(fed, name, kwargs):
    config = _config()
    serial = run_with_workers(name, kwargs, fed, config, num_workers=1)
    parallel = run_with_workers(name, kwargs, fed, config, num_workers=WORKERS)
    assert parallel[0].executor.name == "process"
    assert not parallel[0].executor.degraded
    # The wire transport must have stayed active — a silent fallback to
    # pickling flips this attribute and would mask a packing regression.
    assert parallel[0].executor.transport == "wire"
    assert_equivalent_runs(serial, parallel)


@pytest.mark.parametrize("name,kwargs", [
    ("fedavg", {}),
    ("scaffold", {}),
    ("rfedavg+", {"lam": 1e-3}),
])
def test_pickle_transport_is_bit_identical_to_wire(fed, name, kwargs):
    """The two transports must be interchangeable, bit for bit."""
    config = _config(seed=15)
    wire_run = run_with_workers(name, kwargs, fed, config, num_workers=WORKERS)
    pickle_run = run_with_workers(
        name, kwargs, fed, config, num_workers=WORKERS, transport="pickle"
    )
    assert wire_run[0].executor.transport == "wire"
    assert pickle_run[0].executor.transport == "pickle"
    assert_equivalent_runs(wire_run, pickle_run)


def test_unsafe_algorithm_uses_pickle_engine(fed):
    """wire_transport_safe=False must route around the persistent pool."""
    from repro.algorithms import FedAvg
    from repro.fl.trainer import run_federated
    from tests.helpers import tiny_model_fn

    class _OptedOut(FedAvg):
        name = "fedavg"
        wire_transport_safe = False

    config = _config(seed=16, num_workers=WORKERS, executor="process")
    serial = run_with_workers("fedavg", {}, fed, _config(seed=16), num_workers=1)
    opted_out = _OptedOut()
    history = run_federated(opted_out, fed, tiny_model_fn(fed), config)
    assert not opted_out.executor.degraded
    assert_equivalent_runs(serial, (opted_out, history))


@pytest.mark.parametrize("name,kwargs", [("fedavg", {}), ("scaffold", {})])
def test_chunked_scheduling_is_bit_identical_to_serial(fed, name, kwargs):
    config = _config(seed=12)
    serial = run_with_workers(name, kwargs, fed, config, num_workers=1)
    chunked = run_with_workers(
        name, kwargs, fed, config, num_workers=WORKERS, executor="chunked"
    )
    assert chunked[0].executor.chunked
    assert_equivalent_runs(serial, chunked)


def test_partial_participation_is_bit_identical_to_serial(fed):
    """Client sampling happens in the parent; the engine must preserve
    the sampled order even when rounds select different subsets."""
    config = _config(sample_ratio=0.5, rounds=4, seed=13)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    parallel = run_with_workers("fedavg", {}, fed, config, num_workers=WORKERS)
    assert_equivalent_runs(serial, parallel)


def test_more_workers_than_clients_is_bit_identical(fed):
    config = _config(seed=14)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    oversized = run_with_workers("fedavg", {}, fed, config, num_workers=16)
    assert_equivalent_runs(serial, oversized)
