"""Composable compression pipeline + error-feedback tests.

Covers the spec grammar, per-stage encode/decode bit-identity, the
error-feedback recursion, byte accounting (including the fixed
UniformQuantizer legacy mode), engine equivalences under compression,
and the obs counters exported to ``summary.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.fl.compression import (
    INDEX_BYTES,
    CompressionPipeline,
    UniformQuantizer,
    WireSize,
    compressor_from_spec,
    make_compressor,
    parse_compression_spec,
)
from repro.fl.config import FLConfig, validate_compression_spec
from tests.helpers import assert_equivalent_runs, run_with_workers

SPECS = [
    "topk:0.05",
    "randk:0.2",
    "subsample:0.2",
    "sketch:0.1",
    "qsgd:4",
    "sign",
    "quantize:6",
    "topk:0.05|qsgd:8",
    "randk:0.1|sign",
    "sketch:0.1|quantize:8",
]


# -- spec grammar ------------------------------------------------------------------


def test_parse_none_is_empty_and_factory_returns_none():
    assert parse_compression_spec("none") == []
    assert compressor_from_spec("none") is None
    assert compressor_from_spec(None) is None
    assert compressor_from_spec("") is None


def test_parse_canonical_spec_round_trips():
    pipeline = CompressionPipeline(" topk:0.05 | qsgd:8 ")
    assert pipeline.spec == "topk:0.05|qsgd:8"
    assert pipeline.selector is not None and pipeline.coder is not None
    # The alias normalizes to its canonical stage name.
    assert CompressionPipeline("subsample:0.2").spec == "randk:0.2"


@pytest.mark.parametrize("bad", [
    "",
    "   ",
    "none|sign",
    "topk",            # missing ratio
    "topk:0",          # ratio out of range
    "topk:1.5",
    "topk:abc",
    "qsgd:1",          # qsgd needs >= 2 bits (sign covers 1-bit)
    "qsgd:20",
    "quantize:0",
    "sign:2",          # sign takes no parameter
    "sign|topk:0.1",   # selector must come first
    "topk:0.1|randk:0.1",  # two selectors
    "qsgd:4|sign",     # two coders
    "gzip",            # unknown stage
])
def test_invalid_specs_raise(bad):
    with pytest.raises(ConfigError):
        parse_compression_spec(bad)


def test_config_validates_specs_through_choice_registry():
    config = FLConfig(rounds=1, compression="topk:0.01|qsgd:8", sync_compression="sign")
    assert config.compression == "topk:0.01|qsgd:8"
    with pytest.raises(ConfigError):
        FLConfig(rounds=1, compression="zip:9")
    with pytest.raises(ConfigError):
        FLConfig(rounds=1, sync_compression="topk:0.1|randk:0.1")
    with pytest.raises(ConfigError):
        validate_compression_spec("")


# -- pipeline mechanics ------------------------------------------------------------


@pytest.mark.parametrize("spec", SPECS)
def test_encode_decode_bit_identical_to_compress(spec):
    """decode(encode(v)) == compress(v) under the same rng, per spec."""
    vec = np.random.default_rng(5).normal(size=257)
    pipeline = compressor_from_spec(spec)
    recon, wire = pipeline.compress(vec, np.random.default_rng(42))
    streams, wire2 = pipeline.encode(vec, np.random.default_rng(42))
    assert wire == wire2
    np.testing.assert_array_equal(pipeline.decode(streams, vec.size), recon)
    if "indices" in streams:
        assert streams["indices"].dtype == np.int32


@pytest.mark.parametrize("spec", SPECS)
def test_stage_footprints_sum_to_wire_size(spec):
    """Per-stage bytes are deterministic in size and sum to the total."""
    pipeline = compressor_from_spec(spec)
    for size in (64, 257, 1000):
        footprints = pipeline.stage_footprints(size)
        total = sum(ws.nbytes(8) for _, ws in footprints)
        assert total == pipeline.wire_size(size).nbytes(8)
        # Data-independent: what compress() reports matches the static account.
        _recon, wire = pipeline.compress(np.ones(size), np.random.default_rng(0))
        assert wire.nbytes(8) == total


def test_selector_only_pipeline_reports_carrier_values():
    pipeline = compressor_from_spec("topk:0.1")
    footprints = dict(pipeline.stage_footprints(100))
    assert footprints["topk:0.1"].index_ints == 10
    assert footprints["values"].values == 10
    assert pipeline.wire_size(100).nbytes(8) == 10 * 8 + 10 * INDEX_BYTES


def test_sketch_tables_are_deterministic():
    pipeline = compressor_from_spec("sketch:0.25")
    vec = np.random.default_rng(1).normal(size=200)
    a, _ = pipeline.compress(vec, np.random.default_rng(0))
    b, _ = pipeline.compress(vec, np.random.default_rng(999))  # rng-free stage
    np.testing.assert_array_equal(a, b)
    # No index stream: buckets + hash tables are derived, not shipped.
    streams, wire = pipeline.encode(vec, np.random.default_rng(0))
    assert "indices" not in streams
    assert wire.index_ints == 0


@pytest.mark.parametrize("spec", ["qsgd:8", "quantize:8"])
def test_coder_rng_consumption_is_data_independent(spec):
    """Stochastic coders draw the same rng stream for any input, so the
    encode/compress split can never desynchronize the draws."""
    pipeline = compressor_from_spec(spec)
    zeros, _ = pipeline.compress(np.zeros(32), np.random.default_rng(3))
    np.testing.assert_array_equal(zeros, 0.0)
    # After compressing a degenerate vector the generator state matches
    # the state after compressing a generic one.
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    pipeline.compress(np.zeros(32), rng_a)
    pipeline.compress(np.random.default_rng(0).normal(size=32), rng_b)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_qsgd_reconstruction_bounded_by_scale():
    vec = np.random.default_rng(7).normal(size=500)
    recon, _ = compressor_from_spec("qsgd:8").compress(vec, np.random.default_rng(0))
    scale = np.abs(vec).max()
    levels = (1 << 7) - 1
    assert np.abs(recon - vec).max() <= scale / levels + 1e-12
    assert np.abs(recon).max() <= scale + 1e-12


def test_sign_keeps_signs_and_mean_scale():
    vec = np.array([3.0, -1.0, 0.5, -0.5])
    recon, wire = compressor_from_spec("sign").compress(vec, np.random.default_rng(0))
    scale = np.abs(vec).mean()
    np.testing.assert_array_equal(recon, [scale, -scale, scale, -scale])
    assert wire.values == 1 and wire.raw_bytes == 1  # 4 signs -> 1 packed byte


def test_error_feedback_recursion_recovers_signal():
    """e_{t+1} = e_t + v - C(v + e_t): the running mean of the
    reconstructions converges to the true vector even at heavy sparsity."""
    vec = np.random.default_rng(11).normal(size=400)
    pipeline = compressor_from_spec("topk:0.05")
    naive = np.zeros_like(vec)
    with_ef = np.zeros_like(vec)
    error = np.zeros_like(vec)
    steps = 60
    for step in range(steps):
        naive += pipeline.compress(vec, np.random.default_rng(step))[0]
        target = vec + error
        recon, _ = pipeline.compress(target, np.random.default_rng(step))
        error = target - recon
        with_ef += recon
    err_naive = np.linalg.norm(naive / steps - vec)
    err_ef = np.linalg.norm(with_ef / steps - vec)
    assert err_ef < 0.35 * err_naive


# -- byte accounting (satellite: quantizer legacy fix) ------------------------------


def test_quantizer_bytes_use_bit_width_in_both_modes(rng):
    """Regression: legacy_scalars=True must not dtype-inflate the packed
    words — byte charges always reflect the actual bit-width payload."""
    vec = rng.normal(size=320)
    modern = UniformQuantizer(8)
    legacy = UniformQuantizer(8, legacy_scalars=True)
    _recon, modern_wire = modern.compress(vec, np.random.default_rng(3))
    _recon, legacy_wire = legacy.compress(vec, np.random.default_rng(3))
    # Scalar *counts* keep the historical packed-words-as-scalars shape...
    assert modern_wire.scalars == legacy_wire.scalars == 2 + 80
    # ...but neither mode bills those words at dtype width any more:
    # 2 range scalars + 320 coords x 8 bits = 336 bytes, not 656.
    assert modern_wire.nbytes(8) == legacy_wire.nbytes(8) == 2 * 8 + 320
    assert not legacy_wire.legacy


def test_quantizer_constant_vector_bytes(rng):
    _recon, wire = UniformQuantizer(8).compress(np.full(10, 3.0), rng)
    assert wire.nbytes(8) == 16  # just the two (equal) range scalars


# -- deprecated factory -------------------------------------------------------------


def test_make_compressor_warns_once(monkeypatch):
    import repro.fl.compression as comp

    monkeypatch.setattr(comp, "_MAKE_COMPRESSOR_WARNED", False)
    with pytest.deprecated_call():
        make_compressor("topk", ratio=0.1)
    # Second call in the same process stays quiet.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        make_compressor("quantize", bits=4)


# -- end-to-end: equivalences, accounting, obs --------------------------------------


def _base_config(**overrides):
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=31)
    base.update(overrides)
    return FLConfig(**base)


def test_none_spec_is_bit_identical_to_no_knob(toy_federation):
    plain = run_with_workers("fedavg", {}, toy_federation, _base_config(), 1)
    spec_none = run_with_workers(
        "fedavg", {}, toy_federation, _base_config(compression="none"), 1
    )
    assert_equivalent_runs(plain, spec_none)
    assert spec_none[0].compressor is None


@pytest.mark.parametrize("spec", ["topk:0.25|qsgd:8", "qsgd:4", "sign", "sketch:0.2"])
def test_compressed_serial_parallel_wire_equivalence(toy_federation, spec):
    config = _base_config(compression=spec)
    serial = run_with_workers("fedavg", {}, toy_federation, config, 1)
    parallel = run_with_workers(
        "fedavg", {}, toy_federation, config, 2, executor="process", transport="wire"
    )
    assert_equivalent_runs(serial, parallel)


def test_compressed_async_instant_matches_sync(toy_federation):
    config = _base_config(compression="topk:0.25|qsgd:8")
    sync = run_with_workers("fedavg", {}, toy_federation, config, 1)
    instant = run_with_workers(
        "fedavg", {}, toy_federation,
        config.with_updates(execution="async", runtime="instant"), 1,
    )
    assert_equivalent_runs(sync, instant)


def test_pipeline_reduces_uplink_and_tracks_residuals(toy_federation):
    config = _base_config(compression="topk:0.05|qsgd:8")
    dense = run_with_workers("fedavg", {}, toy_federation, _base_config(), 1)
    compressed = run_with_workers("fedavg", {}, toy_federation, config, 1)
    assert (
        compressed[0].ledger.total("up:model") < 0.1 * dense[0].ledger.total("up:model")
    )
    # Downlink unchanged — only uploads ride the pipeline.
    assert compressed[0].ledger.total("down:model") == dense[0].ledger.total("down:model")
    residuals = compressed[0]._residuals
    assert residuals is not None
    assert max(
        float(np.linalg.norm(residuals.get(cid)))
        for cid in range(toy_federation.num_clients)
    ) > 0.0


def test_error_feedback_off_keeps_residuals_unallocated(toy_federation):
    config = _base_config(compression="topk:0.25", error_feedback=False)
    algorithm, _history = run_with_workers("fedavg", {}, toy_federation, config, 1)
    assert algorithm._residuals is None


def test_rfedavg_plus_sync_compression_charges_less(toy_federation):
    dense = run_with_workers(
        "rfedavg+", {"lam": 1e-3}, toy_federation, _base_config(), 1
    )
    compressed = run_with_workers(
        "rfedavg+", {"lam": 1e-3}, toy_federation,
        _base_config(sync_compression="topk:0.1|qsgd:8"), 1,
    )
    # Phase-1 broadcast identical; the second model sync is what shrinks.
    assert (
        compressed[0].ledger.total("down:model") < dense[0].ledger.total("down:model")
    )
    assert compressed[0].ledger.total("up:delta") < dense[0].ledger.total("up:delta")


def test_obs_exports_compression_metrics(toy_federation):
    from repro.fl.trainer import run_federated
    from repro.obs.exporters import summary_dict
    from repro.obs.trace import Tracer
    from repro.algorithms import make_algorithm
    from tests.helpers import tiny_model_fn

    config = _base_config(compression="topk:0.25|qsgd:8")
    tracer = Tracer()
    algorithm = make_algorithm("fedavg")
    history = run_federated(
        algorithm, toy_federation, tiny_model_fn(toy_federation), config,
        tracer=tracer,
    )
    summary = summary_dict(history, tracer)
    counters = summary["trace"]["metrics"]["counters"]
    histograms = summary["trace"]["metrics"]["histograms"]
    assert counters["compression.bytes_saved"] > 0
    stage_keys = [k for k in counters if k.startswith("compression.stage_bytes")]
    assert any("stage=topk:0.25" in k for k in stage_keys)
    assert any("stage=qsgd:8" in k for k in stage_keys)
    # Stage bytes sum to what the ledger charged for uploads.
    assert sum(counters[k] for k in stage_keys) == algorithm.ledger.total("up:model")
    assert histograms["compression.residual_norm"]["count"] > 0
    # Saved + charged == the dense baseline.
    selected_per_round = toy_federation.num_clients  # sample_ratio=1 here
    dense = (
        algorithm.model_size * algorithm.ledger.dtype_bytes
        * selected_per_round * config.rounds
    )
    assert counters["compression.bytes_saved"] + algorithm.ledger.total("up:model") == dense
