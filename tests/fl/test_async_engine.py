"""The event-driven async execution engine (repro.fl.async_engine).

Buffering/staleness semantics, the History/RoundRecord-symmetric JSON
contract of AsyncHistory/AsyncUpdateRecord, checkpoint/resume
bit-identity, and the run_federated dispatch plumbing.  The full
zero-latency sync==async bit-identity matrix lives in
``test_async_equivalence.py``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.exceptions import CheckpointError, ConfigError
from repro.fl.async_engine import AsyncHistory, AsyncUpdateRecord
from repro.fl.config import FLConfig
from repro.fl.runtime import TraceRuntime
from repro.fl.trainer import run_federated
from repro.obs.trace import Tracer
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, tiny_model_fn

# Toy federation has 4 clients; two fast, two 10x slower — with a
# 3-deep buffer the slow clients' updates land one round late.
STRAGGLER_TIMES = [0.1, 0.1, 1.0, 1.0]


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def _config(**overrides) -> FLConfig:
    base = dict(
        rounds=4, local_steps=2, batch_size=8, lr=0.1, seed=11,
        execution="async",
    )
    base.update(overrides)
    return FLConfig(**base)


def _run(fed, config, algorithm="fedavg", runtime=None, **kwargs):
    alg = make_algorithm(algorithm)
    history = run_federated(
        alg, fed, tiny_model_fn(fed), config, runtime=runtime, **kwargs
    )
    return alg, history


# -- JSON contract (symmetric with History/RoundRecord) -----------------------------


def test_update_record_json_round_trip():
    record = AsyncUpdateRecord(
        update_idx=3, sim_time=1.25, client_id=2, staleness=1,
        effective_weight=0.7071, train_loss=0.42, test_accuracy=0.9,
        dispatch_round=1, flush_round=2,
    )
    assert AsyncUpdateRecord.from_json(record.to_json()) == record


def test_update_record_from_dict_ignores_unknown_keys():
    record = AsyncUpdateRecord(
        update_idx=0, sim_time=0.0, client_id=1, staleness=0,
        effective_weight=1.0, train_loss=1.0,
    )
    data = {**record.to_dict(), "future_field": "ignored"}
    assert AsyncUpdateRecord.from_dict(data) == record


def test_async_history_json_round_trip(fed):
    _alg, history = _run(
        fed, _config(buffer_size=3), runtime=TraceRuntime(STRAGGLER_TIMES)
    )
    original = history.async_history
    restored = AsyncHistory.from_json(original.to_json())
    assert restored.to_dict() == original.to_dict()
    assert restored.records == original.records
    assert restored.final_accuracy == original.final_accuracy
    assert restored.discarded_updates == original.discarded_updates


# -- buffering / staleness semantics ------------------------------------------------


def test_full_cohort_buffer_has_no_staleness(fed):
    _alg, history = _run(fed, _config())  # instant runtime, buffer = cohort
    async_history = history.async_history
    assert len(async_history.records) == 4 * fed.num_clients
    assert async_history.max_staleness() == 0
    assert async_history.discarded_updates == 0
    assert all(r.effective_weight == 1.0 for r in async_history.records)


def test_straggler_updates_arrive_stale_and_discounted(fed):
    _alg, history = _run(
        fed, _config(buffer_size=3, staleness_exponent=0.5),
        runtime=TraceRuntime(STRAGGLER_TIMES),
    )
    async_history = history.async_history
    stale = [r for r in async_history.records if r.staleness > 0]
    assert stale, "straggler schedule produced no stale arrivals"
    for record in stale:
        expected = (1.0 + record.staleness) ** -0.5
        assert record.effective_weight == pytest.approx(expected)
        assert record.dispatch_round < record.flush_round
    # In-flight updates at the end of the round budget are dropped.
    assert async_history.discarded_updates > 0


def test_zero_exponent_disables_discount_but_not_rebasing(fed):
    _alg, history = _run(
        fed, _config(buffer_size=3, staleness_exponent=0.0),
        runtime=TraceRuntime(STRAGGLER_TIMES),
    )
    stale = [r for r in history.async_history.records if r.staleness > 0]
    assert stale and all(r.effective_weight == 1.0 for r in stale)


def test_buffer_size_caps_flush_batches(fed):
    _alg, history = _run(
        fed, _config(buffer_size=2), runtime=TraceRuntime(STRAGGLER_TIMES)
    )
    per_flush = {}
    for record in history.async_history.records:
        per_flush[record.flush_round] = per_flush.get(record.flush_round, 0) + 1
    assert max(per_flush.values()) <= 2
    # The dispatch cap defers cohort members whose previous update is
    # still in flight, so backlogged rounds dispatch fewer clients than
    # they sample; dispatch_cap=False restores the legacy re-dispatch.
    assert all(r.num_selected <= fed.num_clients for r in history.records)
    assert any(r.num_selected < fed.num_clients for r in history.records)
    _alg, legacy = _run(
        fed, _config(buffer_size=2, dispatch_cap=False),
        runtime=TraceRuntime(STRAGGLER_TIMES),
    )
    assert all(r.num_selected == fed.num_clients for r in legacy.records)


def test_dispatch_cap_bounds_inflight_backlog(fed):
    """Regression for the async backlog bug: with a small buffer and a
    long-tail runtime, re-dispatching still-in-flight clients grows the
    event queue without bound; the dispatch cap keeps the backlog (and
    the terminal discard count) bounded by the population."""
    config = _config(rounds=12, buffer_size=1)
    _alg, capped = _run(fed, config, runtime=TraceRuntime(STRAGGLER_TIMES))
    assert capped.async_history.discarded_updates <= fed.num_clients
    _alg, uncapped = _run(
        fed, config.with_updates(dispatch_cap=False),
        runtime=TraceRuntime(STRAGGLER_TIMES),
    )
    assert uncapped.async_history.discarded_updates > fed.num_clients


def test_dispatch_cap_keeps_inflight_gauge_bounded(fed):
    tracer = Tracer()
    inflight = []

    def sample(_record):
        inflight.append(tracer.metrics.gauge("async.inflight").value)

    _run(
        fed, _config(rounds=10, buffer_size=1),
        runtime=TraceRuntime(STRAGGLER_TIMES),
        tracer=tracer, callbacks=[sample],
    )
    assert len(inflight) == 10
    assert max(inflight) <= fed.num_clients
    assert tracer.metrics.state_dict()["counters"]["async.deferred_dispatches"] > 0


def test_buffer_timeout_flushes_partial_buffer(fed):
    # All clients need 1.0 except client 0 (0.1); a 0.5 timeout flushes
    # the lone fast arrival instead of waiting for a full cohort.
    times = [0.1] + [1.0] * (make_toy_federation(0.0).num_clients - 1)
    _alg, history = _run(
        fed, _config(buffer_timeout=0.5), runtime=TraceRuntime(times)
    )
    first_flush = [
        r for r in history.async_history.records if r.flush_round == 0
    ]
    assert len(first_flush) == 1
    assert first_flush[0].client_id == 0


def test_sim_clock_is_monotone(fed):
    _alg, history = _run(
        fed, _config(buffer_size=3, runtime="gaussian:het=1.0,std=0.2")
    )
    sim_times = [r.sim_time for r in history.async_history.records]
    assert sim_times == sorted(sim_times)


def test_runtime_spec_from_config_matches_instance(fed):
    spec = "gaussian:het=1.5,std=0.2"
    _, from_spec = _run(fed, _config(buffer_size=3, runtime=spec))
    from repro.fl.runtime import make_runtime

    instance = make_runtime(spec, fed.num_clients, seed=11)
    _, from_instance = _run(fed, _config(buffer_size=3), runtime=instance)
    assert (
        from_spec.async_history.to_dict() == from_instance.async_history.to_dict()
    )


def test_sync_execution_rejects_runtime_kwarg(fed):
    with pytest.raises(ConfigError, match="async"):
        _run(fed, _config(execution="sync"), runtime=TraceRuntime([1.0] * 4))


# -- observability ------------------------------------------------------------------


def test_traced_async_run_emits_staleness_metrics(fed):
    tracer = Tracer()
    _alg, _history = _run(
        fed, _config(buffer_size=3), runtime=TraceRuntime(STRAGGLER_TIMES),
        tracer=tracer,
    )
    snapshot = tracer.metrics.state_dict()
    assert "async.staleness" in snapshot["histograms"]
    assert "async.buffer_occupancy" in snapshot["gauges"]
    assert "async.sim_time" in snapshot["gauges"]
    assert snapshot["counters"]["async.stale_updates"] > 0


def test_async_artifacts_include_update_log(fed, tmp_path):
    from repro.obs.exporters import write_run_artifacts

    _alg, history = _run(fed, _config(buffer_size=3),
                         runtime=TraceRuntime(STRAGGLER_TIMES))
    out = write_run_artifacts(tmp_path / "run", history)
    async_json = Path(out) / "async.json"
    assert async_json.is_file()
    restored = AsyncHistory.from_json(async_json.read_text())
    assert restored.to_dict() == history.async_history.to_dict()


# -- checkpoint / resume ------------------------------------------------------------


def _crash_and_resume_async(fed, tmp_path, config):
    baseline = _run(fed, config, runtime=TraceRuntime(STRAGGLER_TIMES))
    ckpt_dir = tmp_path / "ckpt"
    ckpt_config = config.with_updates(
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50
    )
    _run(fed, ckpt_config, runtime=TraceRuntime(STRAGGLER_TIMES))
    removed = 0
    for round_idx in range(2, config.rounds):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
            removed += 1
    assert removed > 0
    resumed = _run(
        fed, ckpt_config.with_updates(resume=True),
        runtime=TraceRuntime(STRAGGLER_TIMES),
    )
    return baseline, resumed


def test_async_crash_resume_is_bit_identical(fed, tmp_path):
    """Resume restores the event heap: in-flight straggler updates
    dispatched before the crash still arrive, stale, after it."""
    baseline, resumed = _crash_and_resume_async(
        fed, tmp_path, _config(rounds=6, buffer_size=3)
    )
    assert_equivalent_runs(baseline, resumed)
    assert (
        resumed[1].async_history.to_dict() == baseline[1].async_history.to_dict()
    )


def test_sync_checkpoint_refuses_async_resume(fed, tmp_path):
    ckpt_dir = tmp_path / "ckpt"
    sync_config = FLConfig(
        rounds=3, local_steps=1, batch_size=8, seed=11,
        checkpoint_dir=str(ckpt_dir),
    )
    _run(fed, sync_config)
    # Same config except execution mode: the provenance hash differs, so
    # the resume is refused before the missing async section matters.
    from repro.exceptions import CheckpointMismatchError

    with pytest.raises((CheckpointError, CheckpointMismatchError)):
        _run(fed, sync_config.with_updates(execution="async", resume=True))


def test_empty_buffer_round_keeps_model(fed):
    """A round whose entire cohort is still in flight must not aggregate."""
    from repro.fl.faults import FaultModel

    # Massive dropout can empty a cohort; the engine records a NaN-loss
    # round and the model survives unchanged.
    config = _config(rounds=3, sample_ratio=0.5, seed=5)
    alg = make_algorithm("fedavg")
    alg.with_faults(FaultModel(dropout_prob=0.95, seed=3))
    history = run_federated(alg, fed, tiny_model_fn(fed), config)
    assert len(history.records) == 3
    assert np.isfinite(alg.global_params).all()
