"""Property-based tests for the scale-out cohort samplers.

Reservoir (Floyd) and stratified sampling must behave like uniform
sampling in every observable way that matters — determinism under a
fixed seed, sorted unique cohorts, exact proportions — while never
enumerating the population.  Cases sweep a grid of populations, ratios
and seeds rather than single examples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.fl.sampling import (
    parse_sampler_spec,
    reservoir_sample,
    sample_clients,
    sample_cohort,
    stratified_sample,
)

POPULATIONS = (1, 2, 7, 64, 1000, 12345)
RATIOS = (0.01, 0.1, 0.5, 1.0)
SEEDS = (0, 1, 17)


def _grid():
    for num in POPULATIONS:
        for ratio in RATIOS:
            for seed in SEEDS:
                yield num, ratio, seed


@pytest.mark.parametrize("sampler", ["uniform", "reservoir", "stratified:10"])
def test_determinism_under_fixed_seed(sampler):
    for num, ratio, seed in _grid():
        a = sample_cohort(num, ratio, np.random.default_rng(seed), sampler=sampler)
        b = sample_cohort(num, ratio, np.random.default_rng(seed), sampler=sampler)
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("sampler", ["uniform", "reservoir", "stratified:10"])
def test_cohorts_are_sorted_unique_in_range(sampler):
    for num, ratio, seed in _grid():
        cohort = sample_cohort(
            num, ratio, np.random.default_rng(seed), sampler=sampler
        )
        assert cohort.dtype == np.int64
        assert len(np.unique(cohort)) == len(cohort)
        assert (np.sort(cohort) == cohort).all()
        assert len(cohort) == max(1, int(round(num * ratio)))
        if len(cohort):
            assert cohort.min() >= 0 and cohort.max() < num


@pytest.mark.parametrize("sampler", ["uniform", "reservoir", "stratified:10"])
def test_exact_uniformity_at_full_participation(sampler):
    """ratio=1.0: the cohort is exactly the whole population."""
    for num in POPULATIONS:
        cohort = sample_cohort(
            num, 1.0, np.random.default_rng(3), sampler=sampler
        )
        np.testing.assert_array_equal(cohort, np.arange(num, dtype=np.int64))


def test_uniform_kind_is_bit_identical_to_legacy_stream():
    """sampler='uniform' must consume the round RNG exactly as the
    historical sample_clients call — resuming old runs depends on it."""
    for num, ratio, seed in _grid():
        legacy = sample_clients(num, ratio, np.random.default_rng([seed, 0xF1]))
        routed = sample_cohort(
            num, ratio, np.random.default_rng([seed, 0xF1]), sampler="uniform"
        )
        np.testing.assert_array_equal(legacy, routed)


def test_reservoir_draws_O_count_not_O_population():
    """Floyd's algorithm draws one integer per cohort member, so a
    100-client cohort from a 10-million population consumes exactly 100
    draws — verified by stream position, not wall clock."""
    count = 100
    rng = np.random.default_rng(5)
    probe = np.random.default_rng(5)
    reservoir_sample(10_000_000, count, rng)
    probe.integers(0, 1 << 30, size=count)  # same number of draws
    assert rng.bit_generator.state == probe.bit_generator.state


def test_successive_rounds_give_disjoint_looking_cohorts():
    """Cohorts from one generator across rounds are almost surely not
    identical (they share a stream, not a value)."""
    rng = np.random.default_rng(11)
    first = reservoir_sample(100_000, 50, rng)
    second = reservoir_sample(100_000, 50, rng)
    assert not np.array_equal(first, second)
    # At 0.05% participation, overlap should be tiny.
    assert len(np.intersect1d(first, second)) <= 5


def test_reservoir_matches_uniform_distribution_statistically():
    """Every client id should be picked with probability ~count/num."""
    num, count, trials = 200, 20, 400
    hits = np.zeros(num)
    rng = np.random.default_rng(123)
    for _ in range(trials):
        hits[reservoir_sample(num, count, rng)] += 1
    expected = trials * count / num
    # Binomial std is sqrt(trials * p * (1-p)) ~ 6; allow 5 sigma.
    assert np.abs(hits - expected).max() < 5 * np.sqrt(expected)


def test_stratified_proportions_are_largest_remainder_exact():
    """Each stratum contributes floor or ceil of its proportional share."""
    for strata in (2, 5, 10):
        for num, count in ((1000, 100), (997, 31), (64, 7)):
            cohort = stratified_sample(
                num, count, np.random.default_rng(7), strata=strata
            )
            bounds = np.linspace(0, num, strata + 1).astype(np.int64)
            per = np.array([
                np.count_nonzero((cohort >= lo) & (cohort < hi))
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ])
            assert per.sum() == len(cohort)
            share = count * np.diff(bounds) / num
            assert (per >= np.floor(share) - 1).all()
            assert (per <= np.ceil(share) + 1).all()


def test_stratified_covers_every_stratum_when_count_allows():
    cohort = stratified_sample(1000, 100, np.random.default_rng(0), strata=10)
    bounds = np.linspace(0, 1000, 11).astype(np.int64)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        assert np.count_nonzero((cohort >= lo) & (cohort < hi)) > 0


def test_stratified_handles_more_strata_than_cohort():
    cohort = stratified_sample(1000, 3, np.random.default_rng(2), strata=10)
    assert len(cohort) == 3
    assert len(np.unique(cohort)) == 3


def test_parse_sampler_spec():
    assert parse_sampler_spec("uniform") == ("uniform", None)
    assert parse_sampler_spec("reservoir") == ("reservoir", None)
    assert parse_sampler_spec("stratified") == ("stratified", None)
    assert parse_sampler_spec("stratified:25") == ("stratified", 25)
    with pytest.raises(ConfigError):
        parse_sampler_spec("stratified:0")
    with pytest.raises(ConfigError):
        parse_sampler_spec("stratified:abc")
    with pytest.raises(ConfigError):
        parse_sampler_spec("uniform:5")  # only stratified takes a parameter


def test_sample_cohort_rejects_unknown_sampler():
    with pytest.raises(ConfigError):
        sample_cohort(10, 0.5, np.random.default_rng(0), sampler="nope")
