"""Compression strategy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ConfigError
from repro.fl.compression import (
    INDEX_BYTES,
    NoCompression,
    RandomSubsampler,
    TopKSparsifier,
    UniformQuantizer,
    WireSize,
    make_compressor,
)

vectors = hnp.arrays(np.float64, st.integers(4, 100), elements=st.floats(-100, 100))


def test_no_compression_identity(rng):
    vec = rng.normal(size=50)
    recon, wire = NoCompression().compress(vec, rng)
    np.testing.assert_array_equal(recon, vec)
    assert wire.scalars == 50
    assert wire.index_ints == 0
    assert wire.nbytes(8) == 400


def test_topk_keeps_largest(rng):
    vec = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
    recon, wire = TopKSparsifier(0.4).compress(vec, rng)
    np.testing.assert_array_equal(recon, [0.0, -5.0, 0.0, 3.0, 0.0])
    assert wire.scalars == 4  # 2 kept coords x (value + index)
    assert wire.values == 2 and wire.index_ints == 2


@given(vectors, st.floats(0.05, 1.0))
@settings(max_examples=40, deadline=None)
def test_topk_properties(vec, ratio):
    rng = np.random.default_rng(0)
    recon, wire = TopKSparsifier(ratio).compress(vec, rng)
    k = max(1, int(round(ratio * vec.size)))
    assert (recon != 0).sum() <= k
    assert wire.scalars == 2 * k
    assert wire.values == k and wire.index_ints == k
    # Kept values are unchanged.
    mask = recon != 0
    np.testing.assert_array_equal(recon[mask], vec[mask])


def test_subsample_unbiased(rng):
    vec = np.ones(100)
    recons = [RandomSubsampler(0.2).compress(vec, rng)[0] for _ in range(400)]
    mean = np.mean(recons, axis=0)
    # Unbiased in expectation: the grand mean converges fast, the
    # per-coordinate means within Monte-Carlo noise (std ~ 0.1 here).
    assert abs(mean.mean() - 1.0) < 0.02
    assert np.abs(mean - 1.0).max() < 0.5


def test_subsample_wire_size(rng):
    vec = np.ones(100)
    _recon, wire = RandomSubsampler(0.1).compress(vec, rng)
    assert wire.scalars == 20
    assert wire.values == 10 and wire.index_ints == 10


def test_quantizer_reconstruction_within_step(rng):
    vec = rng.normal(size=200)
    recon, _wire = UniformQuantizer(8).compress(vec, rng)
    step = (vec.max() - vec.min()) / 255
    assert np.abs(recon - vec).max() <= step + 1e-12


def test_quantizer_unbiased(rng):
    vec = np.array([0.0, 0.3, 0.7, 1.0])
    recons = [UniformQuantizer(1).compress(vec, rng)[0] for _ in range(3000)]
    np.testing.assert_allclose(np.mean(recons, axis=0), vec, atol=0.05)


def test_quantizer_constant_vector(rng):
    recon, wire = UniformQuantizer(8).compress(np.full(10, 3.0), rng)
    np.testing.assert_array_equal(recon, 3.0)
    assert wire.scalars == 2


def test_quantizer_wire_size(rng):
    _recon, wire = UniformQuantizer(8).compress(np.ones(320) + np.arange(320), rng)
    assert wire.scalars == 2 + 80  # 320 coords * 8 bits / 32-bit scalars
    # Byte accounting charges the raw bitstream, not 32-bit scalars.
    assert wire.values == 2 and wire.raw_bytes == 320
    assert wire.nbytes(8) == 2 * 8 + 320


@pytest.mark.parametrize("compressor", [TopKSparsifier(0.2), RandomSubsampler(0.2)])
def test_encode_decode_matches_compress(rng, compressor):
    """decode(encode(v)) is bit-identical to compress(v) for sparsifiers."""
    vec = rng.normal(size=64)
    streams, wire = compressor.encode(vec, np.random.default_rng(7))
    recon, wire2 = compressor.compress(vec, np.random.default_rng(7))
    assert streams["indices"].dtype == np.int32
    assert wire == wire2
    np.testing.assert_array_equal(compressor.decode(streams, vec.size), recon)


def test_encode_base_compressors_return_none(rng):
    vec = rng.normal(size=16)
    assert NoCompression().encode(vec, rng) is None
    assert UniformQuantizer(8).encode(vec, rng) is None


def test_index_bytes_accounting(rng):
    """Indices ride as int32 on the wire regardless of the value dtype."""
    vec = rng.normal(size=100)
    _streams, wire = TopKSparsifier(0.1).encode(vec, rng)
    assert wire.values == 10 and wire.index_ints == 10
    assert wire.nbytes(8) == 10 * 8 + 10 * INDEX_BYTES
    assert wire.nbytes(4) == 10 * 4 + 10 * INDEX_BYTES


def test_legacy_scalars_accounting(rng):
    """legacy_scalars=True restores the old '1 scalar per index' charge."""
    vec = rng.normal(size=100)
    modern = TopKSparsifier(0.1)
    legacy = TopKSparsifier(0.1, legacy_scalars=True)
    assert legacy.encode(vec, np.random.default_rng(3)) is None  # dense path
    _recon, wire = legacy.compress(vec, np.random.default_rng(3))
    assert wire.legacy and wire.scalars == 20
    assert wire.nbytes(8) == 20 * 8  # indices billed at full dtype width
    _recon, modern_wire = modern.compress(vec, np.random.default_rng(3))
    assert not modern_wire.legacy
    assert modern_wire.nbytes(8) == 10 * 8 + 10 * INDEX_BYTES


def test_wire_size_add():
    total = WireSize(values=10, index_ints=10) + WireSize(values=5, raw_bytes=7)
    assert total.values == 15 and total.index_ints == 10 and total.raw_bytes == 7


@pytest.mark.parametrize("cls,kwargs", [
    (TopKSparsifier, {"ratio": 0.0}),
    (TopKSparsifier, {"ratio": 1.5}),
    (RandomSubsampler, {"ratio": 0.0}),
    (UniformQuantizer, {"bits": 0}),
    (UniformQuantizer, {"bits": 32}),
])
def test_invalid_configs(cls, kwargs):
    with pytest.raises(ConfigError):
        cls(**kwargs)


def test_factory_is_deprecated_but_delegates(monkeypatch):
    import repro.fl.compression as comp

    monkeypatch.setattr(comp, "_MAKE_COMPRESSOR_WARNED", False)
    with pytest.deprecated_call():
        assert isinstance(make_compressor("none"), NoCompression)
    assert isinstance(make_compressor("topk", ratio=0.1), TopKSparsifier)
    assert isinstance(make_compressor("quantize", bits=4), UniformQuantizer)
    with pytest.raises(ConfigError):
        make_compressor("zip")


def test_compressed_fedavg_reduces_uplink(toy_federation, fast_config):
    from repro.algorithms import FedAvg
    from repro.fl.trainer import run_federated
    from repro.models import build_mlp

    def model_fn():
        return build_mlp(
            toy_federation.spec.flat_dim, toy_federation.spec.num_classes,
            np.random.default_rng(0), (16,), feature_dim=8,
        )

    plain = FedAvg()
    run_federated(plain, toy_federation, model_fn, fast_config)
    compressed = FedAvg().with_compressor(TopKSparsifier(0.05))
    run_federated(compressed, toy_federation, model_fn, fast_config)
    assert compressed.ledger.total("up:model") < 0.2 * plain.ledger.total("up:model")
    # Downlink unchanged (server still broadcasts the dense model).
    assert compressed.ledger.total("down:model") == plain.ledger.total("down:model")


def test_compressed_fedavg_still_learns(iid_federation):
    from repro.algorithms import FedAvg
    from repro.fl.config import FLConfig
    from repro.fl.trainer import run_federated
    from repro.models import build_mlp

    def model_fn():
        return build_mlp(
            iid_federation.spec.flat_dim, iid_federation.spec.num_classes,
            np.random.default_rng(0), (16,), feature_dim=8,
        )

    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    alg = FedAvg().with_compressor(TopKSparsifier(0.25))
    history = run_federated(alg, iid_federation, model_fn, config)
    assert history.final_accuracy > 0.45
