"""Property-based invariants of the federated runtime."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.server import weighted_average


@given(st.integers(1, 8), st.integers(1, 10), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_aggregating_identical_vectors_is_identity(count, dim, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=dim)
    weights = rng.uniform(0.1, 5.0, size=count)
    out = weighted_average([vec.copy() for _ in range(count)], weights)
    np.testing.assert_allclose(out, vec, atol=1e-12)


@given(st.integers(2, 8), st.integers(1, 10), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_aggregation_invariant_to_client_order(count, dim, seed):
    rng = np.random.default_rng(seed)
    vectors = [rng.normal(size=dim) for _ in range(count)]
    weights = rng.uniform(0.1, 5.0, size=count)
    out = weighted_average(vectors, weights)
    perm = rng.permutation(count)
    out_permuted = weighted_average([vectors[i] for i in perm], weights[perm])
    np.testing.assert_allclose(out, out_permuted, atol=1e-12)


@given(st.integers(1, 6), st.integers(1, 8), st.floats(0.1, 10.0), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_aggregation_is_linear(count, dim, scale, seed):
    """agg(a*v) = a*agg(v) — aggregation commutes with scaling."""
    rng = np.random.default_rng(seed)
    vectors = [rng.normal(size=dim) for _ in range(count)]
    weights = rng.uniform(0.1, 5.0, size=count)
    out = weighted_average(vectors, weights)
    scaled = weighted_average([scale * v for v in vectors], weights)
    np.testing.assert_allclose(scaled, scale * out, rtol=1e-10, atol=1e-10)


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_delta_table_loo_mean_identity(seed):
    """With all clients reported, the leave-one-out averages satisfy
    N * mean(all) = delta_k + (N-1) * mean_of_others(k) for every k."""
    from repro.core.delta import DeltaTable

    rng = np.random.default_rng(seed)
    n, dim = int(rng.integers(2, 8)), int(rng.integers(1, 6))
    table = DeltaTable(n, dim)
    deltas = rng.normal(size=(n, dim))
    for k in range(n):
        table.update(k, deltas[k])
    full_mean = deltas.mean(axis=0)
    for k in range(n):
        reconstructed = (deltas[k] + (n - 1) * table.mean_of_others(k)) / n
        np.testing.assert_allclose(reconstructed, full_mean, atol=1e-12)


@given(st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_regularizer_loss_scale_invariance_in_lambda(seed):
    """Doubling lambda exactly doubles both the loss and the gradient."""
    from repro.core.regularizer import DistributionRegularizer

    rng = np.random.default_rng(seed)
    feats = rng.normal(size=(5, 4))
    target = rng.normal(size=4)
    one = DistributionRegularizer(0.3, mode="loo").evaluate(feats, target)
    two = DistributionRegularizer(0.6, mode="loo").evaluate(feats, target)
    np.testing.assert_allclose(two.loss, 2 * one.loss, rtol=1e-12)
    np.testing.assert_allclose(two.feature_grad, 2 * one.feature_grad, rtol=1e-12)
