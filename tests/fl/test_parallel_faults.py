"""Faults, compression and crashes composed with the parallel engine.

Fault randomness (dropout) is consumed only in the parent process and
byzantine corruption is a pure function of ``(client, params, anchor)``,
so fault-injected runs must stay bit-identical between serial and
parallel execution — including the fault model's own counters.  A worker
crash must degrade the run to in-process execution, not kill it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.fl.compression import UniformQuantizer
from repro.fl.config import FLConfig
from repro.fl.faults import FaultModel
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers, tiny_model_fn


def _config(**overrides) -> FLConfig:
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=21)
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def _fault_model(**kwargs) -> FaultModel:
    return FaultModel(seed=9, **kwargs)


def test_dropout_is_bit_identical_and_counts_match(fed):
    config = _config(rounds=4)
    faults = {}

    def decorate_factory(key):
        def decorate(algorithm):
            faults[key] = _fault_model(dropout_prob=0.4)
            algorithm.with_faults(faults[key])

        return decorate

    serial = run_with_workers(
        "fedavg", {}, fed, config, num_workers=1, decorate=decorate_factory("serial")
    )
    parallel = run_with_workers(
        "fedavg", {}, fed, config, num_workers=4, decorate=decorate_factory("parallel")
    )
    assert_equivalent_runs(serial, parallel)
    assert faults["serial"].dropped_total == faults["parallel"].dropped_total
    assert faults["serial"].dropped_total > 0


def test_byzantine_corruption_is_bit_identical_and_counts_match(fed):
    config = _config(seed=22)
    faults = {}

    def decorate_factory(key):
        def decorate(algorithm):
            faults[key] = _fault_model(byzantine_clients=(1,), corruption_scale=2.0)
            algorithm.with_faults(faults[key])

        return decorate

    serial = run_with_workers(
        "fedavg", {}, fed, config, num_workers=1, decorate=decorate_factory("serial")
    )
    parallel = run_with_workers(
        "fedavg", {}, fed, config, num_workers=4, decorate=decorate_factory("parallel")
    )
    assert_equivalent_runs(serial, parallel)
    assert faults["serial"].corrupted_total == faults["parallel"].corrupted_total
    assert faults["serial"].corrupted_total == config.rounds  # client 1, every round


def test_compression_and_faults_compose_under_parallelism(fed):
    config = _config(seed=23)

    def decorate(algorithm):
        algorithm.with_compressor(UniformQuantizer(8))
        algorithm.with_faults(_fault_model(byzantine_clients=(0,)))

    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1, decorate=decorate)
    parallel = run_with_workers("fedavg", {}, fed, config, num_workers=4, decorate=decorate)
    assert_equivalent_runs(serial, parallel)


class _SlowClientsFedAvg(FedAvg):
    """Odd-numbered clients take visibly longer than even ones."""

    name = "fedavg"

    def _client_update(self, round_idx, client_id):
        if client_id % 2 == 1:
            time.sleep(0.05)
        return super()._client_update(round_idx, client_id)


def test_slow_clients_under_chunked_scheduling_stay_bit_identical(fed):
    """Heterogeneous client cost skews chunk finish times — completion
    order differs from selection order, the results must not."""
    from repro.fl.trainer import run_federated

    config = _config(seed=24)
    serial_alg = _SlowClientsFedAvg()
    serial_hist = run_federated(serial_alg, fed, tiny_model_fn(fed), config)

    chunked_config = config.with_updates(num_workers=2, executor="chunked")
    chunked_alg = _SlowClientsFedAvg()
    chunked_hist = run_federated(chunked_alg, fed, tiny_model_fn(fed), chunked_config)
    assert not chunked_alg.executor.degraded
    assert_equivalent_runs((serial_alg, serial_hist), (chunked_alg, chunked_hist))


class _PoisonedFedAvg(FedAvg):
    """Client 2's task kills its worker process — but only when actually
    running inside a worker, so the serial fallback completes cleanly."""

    name = "fedavg"

    def __init__(self) -> None:
        super().__init__()
        self._spawn_pid = os.getpid()

    def _client_update(self, round_idx, client_id):
        if client_id == 2 and os.getpid() != self._spawn_pid:
            os._exit(17)
        return super()._client_update(round_idx, client_id)


@pytest.mark.parametrize("transport", ["wire", "pickle"])
def test_worker_crash_degrades_to_serial_with_identical_results(fed, transport):
    """A crash mid-round must degrade gracefully under either transport —
    the wire engine also has a persistent pool and a shared-memory buffer
    to tear down on the way out."""
    from repro.fl.trainer import run_federated

    config = _config(seed=25)
    reference = FedAvg()
    reference_hist = run_federated(reference, fed, tiny_model_fn(fed), config)

    crashing = _PoisonedFedAvg()
    with pytest.warns(RuntimeWarning, match="worker pool failed"):
        crashing_hist = run_federated(
            crashing, fed, tiny_model_fn(fed),
            config.with_updates(
                num_workers=4, executor="process", transport=transport
            ),
        )
    assert crashing.executor.degraded
    assert crashing.executor._pool is None and crashing.executor._mmap is None
    assert_equivalent_runs((reference, reference_hist), (crashing, crashing_hist))


def test_sparse_compression_rides_the_wire_bit_identically(fed):
    """TopK updates travel as int32 index + value streams on the wire
    path; the parent-side reconstruction must match serial compress()."""
    from repro.fl.compression import TopKSparsifier

    config = _config(seed=26)

    def decorate(algorithm):
        algorithm.with_compressor(TopKSparsifier(0.25))

    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1, decorate=decorate)
    parallel = run_with_workers("fedavg", {}, fed, config, num_workers=4, decorate=decorate)
    assert parallel[0].executor.transport == "wire"
    assert_equivalent_runs(serial, parallel)
