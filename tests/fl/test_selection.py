"""Client selection strategy tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.selection import (
    PowerOfChoiceSelector,
    SelectionContext,
    UniformSelector,
)
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _context(fed, losses, seed=0):
    return SelectionContext(
        round_idx=0,
        fed=fed,
        rng=np.random.default_rng(seed),
        client_loss=lambda cid: losses[cid],
    )


def test_uniform_full_participation(toy_federation):
    ctx = _context(toy_federation, [0.0] * 4)
    np.testing.assert_array_equal(
        UniformSelector(1.0).select(ctx), np.arange(4)
    )


def test_uniform_partial_sizes(toy_federation):
    ctx = _context(toy_federation, [0.0] * 4)
    selected = UniformSelector(0.5).select(ctx)
    assert len(selected) == 2
    assert len(np.unique(selected)) == 2


def test_power_of_choice_prefers_high_loss(toy_federation):
    losses = [0.1, 9.0, 0.2, 8.0]  # clients 1 and 3 are struggling
    selector = PowerOfChoiceSelector(0.5, candidate_factor=2.0)
    ctx = _context(toy_federation, losses)
    selected = selector.select(ctx)
    # With the candidate pool covering all 4 clients, the two selected
    # must be the two highest-loss ones.
    np.testing.assert_array_equal(selected, [1, 3])


def test_power_of_choice_pool_capped_at_n(toy_federation):
    selector = PowerOfChoiceSelector(1.0, candidate_factor=10.0)
    ctx = _context(toy_federation, [1.0] * 4)
    selected = selector.select(ctx)
    assert len(selected) == 4


def test_power_of_choice_validation():
    with pytest.raises(ConfigError):
        PowerOfChoiceSelector(0.5, candidate_factor=0.5)


def test_invalid_ratio_raises(toy_federation):
    ctx = _context(toy_federation, [0.0] * 4)
    with pytest.raises(ConfigError):
        UniformSelector(1.5).select(ctx)


def test_trainer_accepts_selector(toy_federation):
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1,
                      sample_ratio=0.5, seed=1)

    def model_fn():
        return build_mlp(
            toy_federation.spec.flat_dim, toy_federation.spec.num_classes,
            np.random.default_rng(0), (16,), feature_dim=8,
        )

    selector = PowerOfChoiceSelector(0.5, candidate_factor=2.0)
    history = run_federated(
        FedAvg(), toy_federation, model_fn, config, selector=selector
    )
    assert len(history.records) == 3
    assert all(r.num_selected == 2 for r in history.records)


def test_power_of_choice_targets_struggling_clients_in_training(toy_federation):
    """Over a run, loss-biased selection should visit the high-loss
    clients at least as often as uniform selection does."""
    config = FLConfig(rounds=8, local_steps=2, batch_size=8, lr=0.05,
                      sample_ratio=0.25, seed=3)

    def model_fn():
        return build_mlp(
            toy_federation.spec.flat_dim, toy_federation.spec.num_classes,
            np.random.default_rng(0), (16,), feature_dim=8,
        )

    counts = np.zeros(4)
    original_select = PowerOfChoiceSelector.select

    class CountingSelector(PowerOfChoiceSelector):
        def select(self, context):
            chosen = original_select(self, context)
            counts[chosen] += 1
            return chosen

    run_federated(
        FedAvg(), toy_federation, model_fn, config,
        selector=CountingSelector(0.25, candidate_factor=4.0),
    )
    assert counts.sum() == 8  # one client per round
    assert counts.max() >= 2  # concentrates on hard clients
