"""Hierarchical == flat equivalence matrix (the house invariant).

``topology='hier:1:1'`` — one region, cloud sync every round, where the
sync short-circuits entirely — must reproduce the flat engine **bit
for bit** for every registered algorithm: parameters, every History
field except wall time, and the per-round ledger.  That identity is
what makes ``topology`` a deployment knob rather than a numerical
change, and it is the gate ``benchmarks/bench_hierarchy.py`` sits
behind.

Also covered here: hier serial == hier wire-parallel at R > 1 (the
region-parallel speedup path changes nothing numerically), crash-resume
bit-identity of hierarchical checkpoints, and the refusal of
cross-topology resumes.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS
from repro.exceptions import CheckpointError, CheckpointMismatchError
from repro.fl.config import FLConfig
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers

WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "4"))

# (name, constructor kwargs, slow?) — one row per registered algorithm.
MATRIX = [
    ("fedavg", {}, False),
    ("fedavgm", {}, False),
    ("fednova", {}, False),
    ("fedprox", {"mu": 0.1}, False),
    ("moon", {"mu": 0.5}, True),
    ("scaffold", {}, False),
    ("qfedavg", {"q": 1.0}, False),
    ("rfedavg", {"lam": 1e-3}, True),
    ("rfedavg+", {"lam": 1e-3}, False),
    ("rfedavg_exact", {"lam": 1e-3}, True),
]

# Algorithms safe to aggregate per region (R > 1); rfedavg_exact is
# excluded by contract (region_aggregation_safe = False).
REGION_SAFE = [row for row in MATRIX if row[0] != "rfedavg_exact"]


def _config(**overrides) -> FLConfig:
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=11)
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def test_matrix_covers_every_registered_algorithm():
    """A new algorithm must be added to the hierarchy equivalence matrix."""
    assert {name for name, _, _ in MATRIX} == set(ALGORITHMS)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in MATRIX
    ],
)
def test_hier_one_one_is_bit_identical_to_flat(fed, name, kwargs):
    flat = run_with_workers(name, kwargs, fed, _config(), num_workers=1)
    hier = run_with_workers(
        name, kwargs, fed, _config(topology="hier:1:1"), num_workers=1
    )
    assert_equivalent_runs(flat, hier)


def test_hier_one_one_identity_with_partial_participation(fed):
    """Cohort sampling consumes the selection RNG identically."""
    config = _config(sample_ratio=0.5, rounds=4)
    flat = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    hier = run_with_workers(
        "fedavg", {}, fed, config.with_updates(topology="hier:1:1"), num_workers=1
    )
    assert_equivalent_runs(flat, hier)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in REGION_SAFE
    ],
)
def test_region_parallel_matches_region_serial(fed, name, kwargs):
    """R > 1 on the wire-transport process pool == R > 1 serial: the
    concurrent region execution is a scheduler swap, not a numerical
    change."""
    config = _config(topology="hier:2:2")
    serial = run_with_workers(name, kwargs, fed, config, num_workers=1)
    parallel = run_with_workers(
        name, kwargs, fed, config,
        num_workers=WORKERS, executor="process", transport="wire",
    )
    assert_equivalent_runs(serial, parallel)


def test_region_parallel_pickle_transport_matches(fed):
    config = _config(topology="hier:2:2")
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    parallel = run_with_workers(
        "fedavg", {}, fed, config,
        num_workers=WORKERS, executor="process", transport="pickle",
    )
    assert_equivalent_runs(serial, parallel)


# -- crash/resume --------------------------------------------------------------

ROUNDS = 6
CRASH_ROUND = 3


def _simulate_crash(ckpt_dir: Path, crash_round: int = CRASH_ROUND) -> None:
    removed = 0
    for round_idx in range(crash_round, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
            removed += 1
    assert removed > 0, "crash simulation deleted nothing — cadence changed?"


@pytest.mark.parametrize("topology", ["hier:1:1", "hier:2:2", "hier:2:3"])
def test_hier_crash_resume_is_bit_identical(fed, tmp_path, topology):
    config = _config(rounds=ROUNDS, topology=topology)
    baseline = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    ckpt_dir = tmp_path / "ckpt"
    ckpt_config = config.with_updates(
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50
    )
    run_with_workers("fedavg", {}, fed, ckpt_config, num_workers=1)
    _simulate_crash(ckpt_dir)
    resumed = run_with_workers(
        "fedavg", {}, fed, ckpt_config.with_updates(resume=True), num_workers=1
    )
    assert_equivalent_runs(baseline, resumed)


def test_hier_resume_refuses_flat_checkpoint(fed, tmp_path):
    flat_config = _config(
        rounds=ROUNDS, checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_keep=50
    )
    run_with_workers("fedavg", {}, fed, flat_config, num_workers=1)
    with pytest.raises((CheckpointError, CheckpointMismatchError)):
        run_with_workers(
            "fedavg", {}, fed,
            flat_config.with_updates(resume=True, topology="hier:2:2"),
            num_workers=1,
        )


def test_flat_resume_refuses_hier_checkpoint(fed, tmp_path):
    hier_config = _config(
        rounds=ROUNDS, topology="hier:2:2",
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_keep=50,
    )
    run_with_workers("fedavg", {}, fed, hier_config, num_workers=1)
    with pytest.raises((CheckpointError, CheckpointMismatchError)):
        run_with_workers(
            "fedavg", {}, fed,
            hier_config.with_updates(resume=True, topology="flat"),
            num_workers=1,
        )


def test_cloud_compression_participates_in_resume_identity(fed, tmp_path):
    """A compressed cloud hop is numerically relevant state: resume is
    bit-identical under it, and the compressed run differs from dense."""
    config = _config(rounds=ROUNDS, topology="hier:2:2", cloud_compression="topk:0.25")
    baseline = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    dense = run_with_workers(
        "fedavg", {}, fed, config.with_updates(cloud_compression="none"), num_workers=1
    )
    assert not np.array_equal(baseline[0].global_params, dense[0].global_params)
    ckpt_dir = tmp_path / "ckpt"
    ckpt_config = config.with_updates(checkpoint_dir=str(ckpt_dir), checkpoint_keep=50)
    run_with_workers("fedavg", {}, fed, ckpt_config, num_workers=1)
    _simulate_crash(ckpt_dir)
    resumed = run_with_workers(
        "fedavg", {}, fed, ckpt_config.with_updates(resume=True), num_workers=1
    )
    assert_equivalent_runs(baseline, resumed)
