"""Packed flat-buffer wire format tests (:mod:`repro.fl.wire`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WireError
from repro.fl import wire
from repro.fl.compression import WireSize
from repro.fl.parallel import ClientUpdate


# -- pack / unpack round trips ----------------------------------------------------


def test_round_trip_arrays_and_scalars():
    segments = {
        "params": np.arange(12, dtype=np.float64).reshape(3, 4),
        "mask": np.array([True, False, True]),
        "indices": np.array([3, 1, 2], dtype=np.int32),
        "f.loss": 1.5,
        "steps": 7,
    }
    kind, out = wire.unpack(wire.pack("generic", segments))
    assert kind == "generic"
    assert set(out) == set(segments)
    np.testing.assert_array_equal(out["params"], segments["params"])
    np.testing.assert_array_equal(out["mask"], segments["mask"])
    assert out["indices"].dtype == np.int32
    assert out["f.loss"] == 1.5 and isinstance(out["f.loss"], float)
    assert out["steps"] == 7 and isinstance(out["steps"], int)


@pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.int64, np.uint8])
def test_round_trip_preserves_dtype(dtype):
    arr = np.arange(10).astype(dtype)
    _, out = wire.unpack(wire.pack("generic", {"a": arr}))
    assert out["a"].dtype == np.dtype(dtype)
    np.testing.assert_array_equal(out["a"], arr)


def test_payload_is_dtype_true():
    """A float32 vector costs 4 bytes per scalar on the wire, never a
    pickled float64 copy."""
    small = len(wire.pack("generic", {"v": np.zeros(1000, dtype=np.float32)}))
    big = len(wire.pack("generic", {"v": np.zeros(1000, dtype=np.float64)}))
    assert big - small == 4000


def test_round_trip_zero_dim_and_empty_arrays():
    segments = {"scalar_arr": np.array(3.5), "empty": np.zeros(0)}
    _, out = wire.unpack(wire.pack("generic", segments))
    # 0-dim arrays are normalized to shape (1,) by the contiguity pass;
    # genuinely scalar fields should ride as scalar segments instead.
    assert out["scalar_arr"].shape == (1,)
    assert float(out["scalar_arr"][0]) == 3.5
    assert out["empty"].shape == (0,)


def test_unpack_returns_zero_copy_read_only_views():
    buf = wire.pack("generic", {"a": np.arange(8, dtype=np.float64)})
    _, out = wire.unpack(buf)
    arr = out["a"]
    assert not arr.flags.writeable
    assert not arr.flags.owndata  # a view into the message, not a copy
    with pytest.raises(ValueError):
        arr[0] = 99.0


def test_payloads_are_8_byte_aligned():
    buf = wire.pack("generic", {"a": np.arange(3, dtype=np.float64), "b": np.arange(5)})
    _, out = wire.unpack(buf)
    for arr in out.values():
        assert arr.ctypes.data % 8 == 0


def test_unpack_from_memoryview():
    buf = wire.pack("state", {"a": np.arange(4, dtype=np.float64)})
    kind, out = wire.unpack(memoryview(buf))
    assert kind == "state"
    np.testing.assert_array_equal(out["a"], np.arange(4.0))


# -- error cases ------------------------------------------------------------------


def test_pack_rejects_unknown_kind():
    with pytest.raises(WireError, match="kind"):
        wire.pack("telegram", {})


def test_pack_rejects_unsupported_dtype():
    with pytest.raises(WireError, match="dtype"):
        wire.pack("generic", {"a": np.array(["text"], dtype=object)})


def test_pack_rejects_unencodable_value():
    with pytest.raises(WireError, match="cannot encode"):
        wire.pack("generic", {"a": {"nested": "dict"}})


def test_pack_rejects_bad_names():
    with pytest.raises(WireError, match="name"):
        wire.pack("generic", {"": np.zeros(1)})
    with pytest.raises(WireError, match="name"):
        wire.pack("generic", {"x" * 300: np.zeros(1)})


def test_unpack_rejects_bad_magic():
    with pytest.raises(WireError, match="magic"):
        wire.unpack(b"NOPE" + b"\x00" * 32)


def test_unpack_rejects_truncation():
    buf = wire.pack("generic", {"a": np.arange(64, dtype=np.float64)})
    with pytest.raises(WireError, match="truncated"):
        wire.unpack(buf[:10])
    with pytest.raises(WireError, match="truncated"):
        wire.unpack(buf[: len(buf) // 2])


def test_unpack_state_rejects_other_kinds():
    buf = wire.pack("generic", {"a": np.zeros(1)})
    with pytest.raises(WireError, match="state"):
        wire.unpack_state(buf)


# -- state round trip -------------------------------------------------------------


def test_state_round_trip():
    state = {
        "global_params": np.linspace(0, 1, 33),
        "server_control": np.zeros(33),
        "client_controls": np.ones((4, 33)),
    }
    out = wire.unpack_state(wire.pack_state(state))
    assert set(out) == set(state)
    for name, arr in state.items():
        np.testing.assert_array_equal(out[name], arr)


# -- client-update round trip -----------------------------------------------------


def _update(**overrides) -> ClientUpdate:
    base = dict(
        client_id=3,
        params=np.linspace(-1, 1, 17),
        wire=17,
        task_loss=0.25,
        reg_loss=0.015625,
        num_steps=5,
        train_seconds=0.125,
        worker=4242,
        wire_size=WireSize(values=17),
    )
    base.update(overrides)
    return ClientUpdate(**base)


def test_client_update_round_trip_dense():
    update = _update()
    out = wire.unpack_client_update(wire.pack_client_update(update))
    np.testing.assert_array_equal(out.params, update.params)
    assert out.client_id == 3 and out.worker == 4242 and out.num_steps == 5
    assert out.task_loss == 0.25 and out.reg_loss == 0.015625
    assert out.train_seconds == 0.125
    assert out.wire == 17
    assert out.wire_size == update.wire_size
    assert out.payload is None and out.params_streams is None


def test_client_update_round_trip_compressed_streams():
    streams = {
        "indices": np.array([2, 9, 14], dtype=np.int32),
        "values": np.array([0.5, -0.25, 4.0]),
    }
    update = _update(
        params=None,
        params_streams=streams,
        wire_size=WireSize(values=3, index_ints=3, legacy_scalars=6),
    )
    out = wire.unpack_client_update(wire.pack_client_update(update))
    assert out.params is None
    np.testing.assert_array_equal(out.params_streams["indices"], streams["indices"])
    np.testing.assert_array_equal(out.params_streams["values"], streams["values"])
    assert out.params_streams["indices"].dtype == np.int32
    assert out.wire_size == update.wire_size


def test_client_update_round_trip_payload():
    update = _update(payload={"delta": np.full(6, 2.5), "start_loss": 1.75, "tau": 4})
    out = wire.unpack_client_update(wire.pack_client_update(update))
    np.testing.assert_array_equal(out.payload["delta"], update.payload["delta"])
    assert out.payload["start_loss"] == 1.75
    assert out.payload["tau"] == 4


def test_client_update_exotic_payload_raises_wire_error():
    """The transport catches this and falls back to pickling the record."""
    update = _update(payload={"weird": object()})
    with pytest.raises(WireError):
        wire.pack_client_update(update)


def test_client_update_none_legacy_scalars_survives():
    update = _update(wire_size=WireSize(values=17, legacy_scalars=None))
    out = wire.unpack_client_update(wire.pack_client_update(update))
    assert out.wire_size.legacy_scalars is None
    assert out.wire_size.scalars == 17
