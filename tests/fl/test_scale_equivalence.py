"""Scale-out correctness gates: the cross-device machinery (virtual
clients, sharded delta tables, streaming histories) must change *where
bytes live*, never *what they are*.

Every knob here is execution-only by contract, so at small N each one
must reproduce the eager/dense/appending run bit-for-bit — including
across a crash/resume with all three engaged at once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.delta import DeltaTable, ShardedDeltaTable
from repro.data import make_virtual_federation
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.metrics import StreamingHistory
from tests.helpers import assert_equivalent_runs, run_with_workers, tiny_model_fn

ROUNDS = 5


def _config(**overrides) -> FLConfig:
    base = dict(
        rounds=ROUNDS, local_steps=2, batch_size=8, lr=0.1, seed=41,
        sample_ratio=0.5, eval_every=2,
    )
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def virt():
    return make_virtual_federation(
        12, seed=5, similarity=0.2, samples_per_client=16, size_sigma=0.4,
        max_live=4,
    )


@pytest.fixture(scope="module")
def eager(virt):
    return virt.materialize()


# -- virtual vs eager ---------------------------------------------------------------


@pytest.mark.parametrize(
    "name,kwargs",
    [("fedavg", {}), ("rfedavg+", {"lam": 1e-3}), ("scaffold", {})],
    ids=["fedavg", "rfedavg+", "scaffold"],
)
def test_virtual_population_matches_eager_bitwise(virt, eager, name, kwargs):
    config = _config()
    lazy = run_with_workers(name, kwargs, virt, config, num_workers=1)
    dense = run_with_workers(name, kwargs, eager, config, num_workers=1)
    assert_equivalent_runs(dense, lazy)
    # The virtual run never held more than max_live shards.
    assert virt.clients.live_clients == 0  # released after the final round


@pytest.mark.parametrize("sampler", ["reservoir", "stratified:4"])
def test_virtual_matches_eager_under_scale_samplers(virt, eager, sampler):
    """The scale samplers see only (population, ratio, rng) — identical
    cohorts either way, so identical runs."""
    config = _config(sampler=sampler)
    lazy = run_with_workers("fedavg", {}, virt, config, num_workers=1)
    dense = run_with_workers("fedavg", {}, eager, config, num_workers=1)
    assert_equivalent_runs(dense, lazy)


# -- sharded vs dense server state --------------------------------------------------


@pytest.mark.parametrize("name", ["rfedavg", "rfedavg+"])
def test_sharded_table_matches_dense_bitwise(eager, name):
    kwargs = {"lam": 1e-3}
    dense = run_with_workers(
        name, kwargs, eager, _config(state_sharding="dense"), num_workers=1
    )
    sharded = run_with_workers(
        name, kwargs, eager, _config(state_sharding="sharded"), num_workers=1
    )
    spilling = run_with_workers(
        name, kwargs, eager,
        _config(state_sharding="sharded", state_cap=2), num_workers=1,
    )
    assert_equivalent_runs(dense, sharded)
    assert_equivalent_runs(dense, spilling)
    assert isinstance(dense[0].delta_table, DeltaTable)
    assert isinstance(sharded[0].delta_table, ShardedDeltaTable)
    assert spilling[0].delta_table.spilled_rows > 0  # the cap actually bit


def test_auto_sharding_threshold(virt, eager):
    """'auto' picks sharded for virtual populations and for any
    population at/above the threshold, dense otherwise."""
    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    model = tiny_model_fn(eager)()
    algorithm.setup(model, eager, _config())
    assert isinstance(algorithm.delta_table, DeltaTable)
    assert not isinstance(algorithm.delta_table, ShardedDeltaTable)

    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    algorithm.setup(model, virt, _config())
    assert isinstance(algorithm.delta_table, ShardedDeltaTable)

    big = make_virtual_federation(
        make_algorithm("rfedavg+", lam=1e-3).AUTO_SHARD_THRESHOLD, seed=0
    )
    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    algorithm.setup(model, big, _config())
    assert isinstance(algorithm.delta_table, ShardedDeltaTable)

    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    algorithm.setup(model, eager, _config(state_sharding="sharded"))
    assert isinstance(algorithm.delta_table, ShardedDeltaTable)


# -- crash/resume with everything engaged -------------------------------------------


def _scale_config(tmp_path, tag, **overrides):
    return _config(
        state_sharding="sharded",
        state_cap=2,
        history_mode="stream",
        stream_dir=str(tmp_path / f"stream-{tag}"),
        **overrides,
    )


def _timeless(summary: dict) -> dict:
    summary = dict(summary)
    summary.pop("sum_wall_time", None)
    last = summary.get("last_record")
    if last is not None:
        last = dict(last)
        last.pop("wall_time_sec", None)
        summary["last_record"] = last
    return summary


def _assert_same_streaming_run(baseline, resumed):
    alg_a, hist_a = baseline
    alg_b, hist_b = resumed
    assert isinstance(hist_a, StreamingHistory)
    np.testing.assert_array_equal(alg_a.global_params, alg_b.global_params)
    assert _timeless(hist_a.summary_dict()) == _timeless(hist_b.summary_dict())
    np.testing.assert_array_equal(hist_a.accuracies(), hist_b.accuracies())
    np.testing.assert_array_equal(hist_a.train_losses(), hist_b.train_losses())
    assert alg_a.ledger.total() == alg_b.ledger.total()


def test_crash_resume_with_virtual_sharded_streaming(virt, tmp_path):
    """The full scale stack — lazy clients, spilling table, streaming
    history — survives a crash bit-identically."""
    kwargs = {"lam": 1e-3}
    baseline = run_with_workers(
        "rfedavg+", kwargs, virt, _scale_config(tmp_path, "base"), num_workers=1
    )
    ckpt_dir = tmp_path / "ckpt"
    crashed_config = _scale_config(
        tmp_path, "crash", checkpoint_dir=str(ckpt_dir), checkpoint_keep=50
    )
    run_with_workers("rfedavg+", kwargs, virt, crashed_config, num_workers=1)
    removed = 0
    for round_idx in range(2, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
            removed += 1
    assert removed > 0
    resumed = run_with_workers(
        "rfedavg+", kwargs, virt,
        crashed_config.with_updates(resume=True), num_workers=1,
    )
    _assert_same_streaming_run(baseline, resumed)
    # The resumed spool was truncated back to the checkpoint round and
    # then re-extended — it must hold exactly ROUNDS records, once each.
    rounds = resumed[1].rounds()
    np.testing.assert_array_equal(rounds, np.arange(ROUNDS))


def test_streaming_run_matches_appending_run(virt, tmp_path):
    """history_mode is execution-only: the streaming run's spool replays
    the appending run's series exactly."""
    kwargs = {"lam": 1e-3}
    appending = run_with_workers(
        "rfedavg+", kwargs, virt, _config(), num_workers=1
    )
    streaming = run_with_workers(
        "rfedavg+", kwargs, virt,
        _config(history_mode="stream", stream_dir=str(tmp_path / "s")),
        num_workers=1,
    )
    np.testing.assert_array_equal(
        appending[0].global_params, streaming[0].global_params
    )
    np.testing.assert_array_equal(
        streaming[1].accuracies(), appending[1].accuracies()
    )
    np.testing.assert_array_equal(
        streaming[1].train_losses(), appending[1].train_losses()
    )
    assert streaming[1].total_bytes() == appending[1].total_bytes()


def test_cross_layout_resume(virt, tmp_path):
    """state_sharding is execution-only: a dense-run checkpoint resumes
    under sharded layout (and the result still matches the baseline)."""
    kwargs = {"lam": 1e-3}
    baseline = run_with_workers(
        "rfedavg+", kwargs, virt, _config(state_sharding="dense"), num_workers=1
    )
    ckpt_dir = tmp_path / "ckpt"
    dense_config = _config(
        state_sharding="dense", checkpoint_dir=str(ckpt_dir), checkpoint_keep=50
    )
    run_with_workers("rfedavg+", kwargs, virt, dense_config, num_workers=1)
    for round_idx in range(2, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
    resumed = run_with_workers(
        "rfedavg+", kwargs, virt,
        dense_config.with_updates(resume=True, state_sharding="sharded", state_cap=2),
        num_workers=1,
    )
    assert_equivalent_runs(baseline, resumed)
    assert isinstance(resumed[0].delta_table, ShardedDeltaTable)


# -- guard rails --------------------------------------------------------------------


def test_rfedavg_exact_refuses_cross_device_populations():
    fed = make_virtual_federation(200_000, seed=0)
    config = _config(sample_ratio=0.0001, rounds=1, sampler="reservoir")
    with pytest.raises(ConfigError, match="rfedavg_exact"):
        run_with_workers("rfedavg_exact", {"lam": 1e-3}, fed, config, num_workers=1)
