"""Fault-injection tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.faults import FaultModel
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_validation():
    with pytest.raises(ConfigError):
        FaultModel(dropout_prob=1.0)
    with pytest.raises(ConfigError):
        FaultModel(dropout_prob=-0.1)
    with pytest.raises(ConfigError):
        FaultModel(corruption_scale=0.0)


def test_no_faults_is_identity():
    model = FaultModel()
    selected = np.array([0, 1, 2])
    np.testing.assert_array_equal(model.surviving_clients(selected), selected)
    params = np.ones(4)
    np.testing.assert_array_equal(model.maybe_corrupt(0, params, np.zeros(4)), params)


def test_dropout_rate_approximate():
    model = FaultModel(dropout_prob=0.5, seed=1)
    survivors = sum(
        len(model.surviving_clients(np.arange(10))) for _ in range(200)
    )
    assert 800 < survivors < 1200  # ~50% of 2000
    assert model.dropped_total > 0


def test_at_least_one_survivor():
    model = FaultModel(dropout_prob=0.99, seed=0)
    for _ in range(50):
        assert len(model.surviving_clients(np.arange(3))) >= 1


def test_byzantine_sign_flip():
    model = FaultModel(byzantine_clients=(2,), corruption_scale=2.0)
    anchor = np.zeros(3)
    honest = np.array([1.0, -1.0, 0.5])
    corrupted = model.maybe_corrupt(2, honest, anchor)
    np.testing.assert_allclose(corrupted, [-2.0, 2.0, -1.0])
    np.testing.assert_array_equal(model.maybe_corrupt(1, honest, anchor), honest)
    assert model.corrupted_total == 1


def test_dropout_run_completes_and_records_fewer_clients(toy_federation):
    config = FLConfig(rounds=5, local_steps=2, batch_size=8, lr=0.1, seed=2)
    alg = FedAvg().with_faults(FaultModel(dropout_prob=0.5, seed=3))
    history = run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert np.isfinite(history.final_accuracy)
    assert alg.fault_model.dropped_total > 0


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_byzantine_degrades_accuracy(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    clean = FedAvg()
    hist_clean = run_federated(clean, iid_federation, _model_fn(iid_federation), config)
    attacked = FedAvg().with_faults(
        FaultModel(byzantine_clients=(0, 1), corruption_scale=3.0, seed=0)
    )
    hist_attacked = run_federated(
        attacked, iid_federation, _model_fn(iid_federation), config
    )
    # Half the federation flipping its updates must hurt.
    assert hist_attacked.final_accuracy < hist_clean.final_accuracy
