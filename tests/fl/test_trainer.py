"""Protocol-loop tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg, make_algorithm
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.obs import Tracer


def _model_fn(fed, seed=0):
    spec = fed.spec
    return lambda: build_mlp(spec.flat_dim, spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8)


def test_run_records_every_round(toy_federation, fast_config):
    history = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    assert len(history.records) == fast_config.rounds
    assert history.algorithm == "fedavg"
    assert all(r.wall_time_sec > 0 for r in history.records)
    assert all(r.num_selected == toy_federation.num_clients for r in history.records)


def test_eval_cadence(toy_federation):
    config = FLConfig(rounds=5, local_steps=1, batch_size=8, eval_every=2, seed=1)
    history = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), config)
    evaluated = [r.round_idx for r in history.records if r.test_accuracy is not None]
    assert evaluated == [0, 2, 4]  # every 2 plus the final round


def test_final_round_always_evaluated(toy_federation):
    config = FLConfig(rounds=4, local_steps=1, batch_size=8, eval_every=3, seed=1)
    history = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), config)
    assert history.records[-1].test_accuracy is not None
    assert history.final_accuracy == history.records[-1].test_accuracy


def test_comm_bytes_recorded(toy_federation, fast_config):
    history = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    assert all(r.bytes_down > 0 and r.bytes_up > 0 for r in history.records)
    # FedAvg: symmetric model traffic.
    assert all(r.bytes_down == r.bytes_up for r in history.records)


def test_bit_reproducible_across_runs(toy_federation, fast_config):
    hist_a = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    hist_b = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    np.testing.assert_array_equal(hist_a.train_losses(), hist_b.train_losses())
    assert hist_a.final_accuracy == hist_b.final_accuracy


def test_seed_changes_trajectory(toy_federation, fast_config):
    hist_a = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    hist_b = run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config.with_updates(seed=99)
    )
    assert not np.array_equal(hist_a.train_losses(), hist_b.train_losses())


def test_partial_participation_selects_subset(toy_federation):
    config = FLConfig(rounds=3, local_steps=1, batch_size=8, sample_ratio=0.5, seed=0)
    history = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), config)
    assert all(r.num_selected == 2 for r in history.records)


def test_eval_per_client(toy_federation, fast_config):
    history = run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config, eval_per_client=True
    )
    assert history.per_client_accuracy is not None
    assert history.per_client_accuracy.shape == (toy_federation.num_clients,)
    assert np.all((history.per_client_accuracy >= 0) & (history.per_client_accuracy <= 1))


def test_round_callbacks_invoked(toy_federation, fast_config):
    seen, also = [], []
    run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
        callbacks=[
            lambda rec: seen.append(rec.round_idx),
            lambda rec: also.append(rec.train_loss),
        ],
    )
    assert seen == list(range(fast_config.rounds))
    assert len(also) == fast_config.rounds


def test_progress_keyword_removed(toy_federation, fast_config):
    with pytest.raises(TypeError, match="callbacks"):
        run_federated(
            FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
            progress=lambda rec: None,
        )


def test_unknown_keyword_rejected(toy_federation, fast_config):
    with pytest.raises(TypeError, match="unexpected keyword"):
        run_federated(
            FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
            progess=lambda rec: None,  # typo'd name must not pass silently
        )


def test_optional_params_are_keyword_only(toy_federation, fast_config):
    with pytest.raises(TypeError):
        run_federated(
            FedAvg(), toy_federation, _model_fn(toy_federation), fast_config, True
        )


def test_traced_run_emits_expected_span_sequence(toy_federation, fast_config):
    tracer = Tracer()
    run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
        tracer=tracer,
    )
    # One root span per round, each carrying the protocol phases in order.
    assert [root.name for root in tracer.roots] == ["round"] * fast_config.rounds
    for round_idx, root in enumerate(tracer.roots):
        assert root.attrs["round"] == round_idx
        phases = [child.name for child in root.children]
        trains = [p for p in phases if p == "local_train"]
        assert len(trains) == toy_federation.num_clients
        # sample -> broadcast -> local_train... -> aggregate -> eval.
        assert phases[0] == "sample"
        assert phases[1] == "broadcast"
        assert phases[-2] == "aggregate"
        assert phases[-1] == "eval"  # eval_every=1 in fast_config
        assert all(child.duration >= 0 for child in root.children)
    clients = sorted(
        child.attrs["client"]
        for child in tracer.roots[0].children
        if child.name == "local_train"
    )
    assert clients == list(range(toy_federation.num_clients))


def test_traced_run_counts_bytes_and_rounds(toy_federation, fast_config):
    tracer = Tracer()
    history = run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
        tracer=tracer,
    )
    snap = tracer.metrics.snapshot()
    assert snap["counters"]["rounds.completed"] == fast_config.rounds
    down = snap["counters"]['comm.bytes{direction=down}']
    up = snap["counters"]['comm.bytes{direction=up}']
    assert down == sum(r.bytes_down for r in history.records)
    assert up == sum(r.bytes_up for r in history.records)


def test_traced_matches_untraced_trajectory(toy_federation, fast_config):
    plain = run_federated(FedAvg(), toy_federation, _model_fn(toy_federation), fast_config)
    traced = run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config,
        tracer=Tracer(),
    )
    np.testing.assert_array_equal(plain.train_losses(), traced.train_losses())
    assert plain.final_accuracy == traced.final_accuracy


def test_learning_happens_on_iid_data(iid_federation):
    config = FLConfig(rounds=25, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(FedAvg(), iid_federation, _model_fn(iid_federation), config)
    assert history.final_accuracy > 0.5  # 4 classes, chance = 0.25
    assert history.train_losses()[-1] < history.train_losses()[0]


@pytest.mark.parametrize("name,kwargs", [
    ("fedavg", {}),
    ("fedprox", {"mu": 0.1}),
    ("scaffold", {}),
    ("qfedavg", {"q": 1.0}),
    ("rfedavg", {"lam": 1e-3}),
    ("rfedavg+", {"lam": 1e-3}),
    ("rfedavg_exact", {"lam": 1e-3}),
])
def test_every_algorithm_completes_a_run(toy_federation, fast_config, name, kwargs):
    history = run_federated(
        make_algorithm(name, **kwargs), toy_federation, _model_fn(toy_federation), fast_config
    )
    assert len(history.records) == fast_config.rounds
    assert np.isfinite(history.final_accuracy)
