"""Communication ledger tests."""

import numpy as np
import pytest

from repro.fl.comm import CommLedger, vector_bytes
from repro.nn.dtype import default_dtype


def test_vector_bytes():
    assert vector_bytes(100, 4) == 400
    assert vector_bytes(100, 8) == 800


def test_vector_bytes_follows_dtype_policy():
    with default_dtype("float32"):
        assert vector_bytes(100) == 400
    with default_dtype("float64"):
        assert vector_bytes(100) == 800


@pytest.mark.parametrize("dtype,itemsize", [("float32", 4), ("float64", 8)])
def test_ledger_default_width_follows_dtype_policy(dtype, itemsize):
    with default_dtype(dtype):
        ledger = CommLedger()
    assert ledger.dtype_bytes == itemsize
    ledger.charge(CommLedger.UP, "model", 10)
    assert ledger.end_round()["up"] == 10 * itemsize


def test_ledger_explicit_width_overrides_policy():
    with default_dtype("float64"):
        ledger = CommLedger(dtype_bytes=4)
    assert ledger.dtype_bytes == 4
    ledger.charge(CommLedger.DOWN, "model", 10)
    assert ledger.end_round()["down"] == 40


def test_float32_totals_exactly_half_of_float64():
    """The acceptance invariant: same uncompressed traffic, half the
    bytes under the float32 policy."""
    ledgers = {}
    for dtype in ("float32", "float64"):
        with default_dtype(dtype):
            ledger = CommLedger()
        for _round in range(3):
            ledger.charge(CommLedger.DOWN, "model", 1234, copies=5)
            ledger.charge(CommLedger.UP, "model", 1234, copies=5)
            ledger.charge(CommLedger.UP, "delta", 77, copies=5)
            ledger.end_round()
        ledgers[dtype] = ledger
    assert ledgers["float64"].total() == 2 * ledgers["float32"].total()
    for key in ("down:model", "up:model", "up:delta"):
        assert ledgers["float64"].total(key) == 2 * ledgers["float32"].total(key)


def test_end_to_end_float32_run_charges_half_the_bytes(toy_federation, fast_config):
    """A full float32 job moves the same scalar counts as float64, so
    its ledger totals must come out exactly halved."""
    from repro.algorithms import FedAvg
    from repro.fl.trainer import run_federated
    from tests.helpers import tiny_model_fn

    totals = {}
    for dtype in ("float32", "float64"):
        alg = FedAvg()
        run_federated(
            alg, toy_federation, tiny_model_fn(toy_federation),
            fast_config.with_updates(dtype=dtype),
        )
        totals[dtype] = alg.ledger.total()
    assert totals["float64"] == 2 * totals["float32"]


def test_charge_bytes_is_dtype_independent():
    ledger = CommLedger(dtype_bytes=8)
    ledger.charge_bytes(CommLedger.UP, "model", 123, copies=2)
    totals = ledger.end_round()
    assert totals["up"] == 246
    assert totals["up:model"] == 246
    with pytest.raises(ValueError):
        ledger.charge_bytes("sideways", "model", 1)


def test_charge_accumulates_by_direction_and_kind():
    ledger = CommLedger(dtype_bytes=4)
    ledger.charge(CommLedger.DOWN, "model", 10, copies=3)
    ledger.charge(CommLedger.UP, "delta", 5)
    totals = ledger.end_round()
    assert totals["down:model"] == 120
    assert totals["down"] == 120
    assert totals["up:delta"] == 20
    assert totals["up"] == 20


def test_invalid_direction():
    with pytest.raises(ValueError):
        CommLedger().charge("sideways", "model", 10)


def test_rounds_are_isolated():
    ledger = CommLedger(dtype_bytes=1)
    ledger.charge(CommLedger.DOWN, "model", 10)
    ledger.end_round()
    ledger.charge(CommLedger.DOWN, "model", 20)
    ledger.end_round()
    assert ledger.rounds == 2
    assert ledger.round_bytes(0)["down"] == 10
    assert ledger.round_bytes(1)["down"] == 20
    assert ledger.total() == 30
    assert ledger.total("down") == 30
    assert ledger.total("up") == 0


def test_per_round_series():
    ledger = CommLedger(dtype_bytes=1)
    for size in [5, 7, 9]:
        ledger.charge(CommLedger.UP, "model", size)
        ledger.end_round()
    np.testing.assert_array_equal(ledger.per_round_series("up"), [5, 7, 9])
    np.testing.assert_array_equal(ledger.per_round_series("down"), [0, 0, 0])


def test_total_counts_both_directions():
    ledger = CommLedger(dtype_bytes=1)
    ledger.charge(CommLedger.UP, "model", 3)
    ledger.charge(CommLedger.DOWN, "model", 4)
    ledger.end_round()
    assert ledger.total() == 7


def test_idle_round_reports_explicit_zeros():
    ledger = CommLedger(dtype_bytes=1)
    totals = ledger.end_round()
    assert totals == {"down": 0, "up": 0}
    # Direct indexing must work without .get() fallbacks at call sites.
    assert totals["down"] == 0 and totals["up"] == 0


def test_one_sided_round_still_reports_both_directions():
    ledger = CommLedger(dtype_bytes=1)
    ledger.charge(CommLedger.DOWN, "model", 10)
    totals = ledger.end_round()
    assert totals["up"] == 0
    assert totals["down"] == 10
    assert totals["down:model"] == 10


def test_ledger_feeds_shared_metrics_registry():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    ledger = CommLedger(dtype_bytes=1, metrics=registry)
    ledger.charge(CommLedger.DOWN, "model", 10, copies=2)
    ledger.charge(CommLedger.UP, "delta", 5)
    counters = registry.snapshot()["counters"]
    assert counters["comm.bytes{direction=down}"] == 20
    assert counters["comm.bytes{direction=down,kind=model}"] == 20
    assert counters["comm.bytes{direction=up}"] == 5
    assert counters["comm.bytes{direction=up,kind=delta}"] == 5


def test_shared_registry_with_prior_traffic_stays_isolated():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("comm.bytes", direction="down").inc(999)
    ledger = CommLedger(dtype_bytes=1, metrics=registry)
    ledger.charge(CommLedger.DOWN, "model", 10)
    totals = ledger.end_round()
    assert totals["down"] == 10  # the pre-existing 999 is not this ledger's
