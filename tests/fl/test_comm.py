"""Communication ledger tests."""

import numpy as np
import pytest

from repro.fl.comm import CommLedger, vector_bytes


def test_vector_bytes():
    assert vector_bytes(100, 4) == 400
    assert vector_bytes(100, 8) == 800


def test_charge_accumulates_by_direction_and_kind():
    ledger = CommLedger(dtype_bytes=4)
    ledger.charge(CommLedger.DOWN, "model", 10, copies=3)
    ledger.charge(CommLedger.UP, "delta", 5)
    totals = ledger.end_round()
    assert totals["down:model"] == 120
    assert totals["down"] == 120
    assert totals["up:delta"] == 20
    assert totals["up"] == 20


def test_invalid_direction():
    with pytest.raises(ValueError):
        CommLedger().charge("sideways", "model", 10)


def test_rounds_are_isolated():
    ledger = CommLedger(dtype_bytes=1)
    ledger.charge(CommLedger.DOWN, "model", 10)
    ledger.end_round()
    ledger.charge(CommLedger.DOWN, "model", 20)
    ledger.end_round()
    assert ledger.rounds == 2
    assert ledger.round_bytes(0)["down"] == 10
    assert ledger.round_bytes(1)["down"] == 20
    assert ledger.total() == 30
    assert ledger.total("down") == 30
    assert ledger.total("up") == 0


def test_per_round_series():
    ledger = CommLedger(dtype_bytes=1)
    for size in [5, 7, 9]:
        ledger.charge(CommLedger.UP, "model", size)
        ledger.end_round()
    np.testing.assert_array_equal(ledger.per_round_series("up"), [5, 7, 9])
    np.testing.assert_array_equal(ledger.per_round_series("down"), [0, 0, 0])


def test_total_counts_both_directions():
    ledger = CommLedger(dtype_bytes=1)
    ledger.charge(CommLedger.UP, "model", 3)
    ledger.charge(CommLedger.DOWN, "model", 4)
    ledger.end_round()
    assert ledger.total() == 7
