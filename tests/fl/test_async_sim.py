"""Asynchronous FL simulation tests (deprecated standalone sim)."""

import importlib
import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigError

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.fl.async_sim import AsyncConfig, run_async_federated

from repro.models import build_mlp


def test_import_warns_deprecation():
    import repro.fl.async_sim as async_sim

    with pytest.warns(DeprecationWarning, match="async_sim is deprecated"):
        importlib.reload(async_sim)


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _speeds(fed, values):
    return np.array(values[: fed.num_clients], dtype=float)


def test_config_validation():
    with pytest.raises(ConfigError):
        AsyncConfig(max_updates=0)
    with pytest.raises(ConfigError):
        AsyncConfig(alpha=0.0)
    with pytest.raises(ConfigError):
        AsyncConfig(staleness_exponent=-1.0)


def test_speed_validation(toy_federation):
    config = AsyncConfig(max_updates=4)
    with pytest.raises(ConfigError):
        run_async_federated(
            toy_federation, _model_fn(toy_federation), np.array([1.0, 2.0]), config
        )
    with pytest.raises(ConfigError):
        run_async_federated(
            toy_federation, _model_fn(toy_federation),
            np.array([1.0, -1.0, 1.0, 1.0]), config,
        )


def test_run_produces_requested_updates(toy_federation):
    config = AsyncConfig(max_updates=12, local_steps=2, batch_size=8, eval_every=4)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 1.0, 1.0, 1.0]), config,
    )
    assert len(history.records) == 12
    assert history.final_accuracy is not None
    assert history.records[-1].test_accuracy is not None


def test_fast_clients_contribute_more_updates(toy_federation):
    config = AsyncConfig(max_updates=30, local_steps=1, batch_size=8)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 10.0, 10.0, 10.0]), config,
    )
    counts = history.client_update_counts(4)
    assert counts[0] > counts[1:].max()


def test_slow_clients_accumulate_staleness(toy_federation):
    # Enough updates that the 8x-slower client completes several rounds.
    config = AsyncConfig(max_updates=60, local_steps=1, batch_size=8)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 8.0, 1.0, 1.0]), config,
    )
    slow_staleness = [r.staleness for r in history.records if r.client_id == 1]
    fast_staleness = [r.staleness for r in history.records if r.client_id == 0]
    assert slow_staleness, "slow client never completed — sim too short"
    assert max(slow_staleness) > max(fast_staleness)


def test_staleness_discount_weighting(toy_federation):
    config = AsyncConfig(max_updates=25, local_steps=1, batch_size=8,
                         alpha=0.8, staleness_exponent=1.0)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 9.0, 1.0, 1.0]), config,
    )
    for record in history.records:
        expected = 0.8 / (1.0 + record.staleness)
        assert record.effective_weight == pytest.approx(expected)


def test_zero_exponent_ignores_staleness(toy_federation):
    config = AsyncConfig(max_updates=10, local_steps=1, batch_size=8,
                         alpha=0.5, staleness_exponent=0.0)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 7.0, 1.0, 1.0]), config,
    )
    assert all(r.effective_weight == pytest.approx(0.5) for r in history.records)


def test_sim_time_monotone(toy_federation):
    config = AsyncConfig(max_updates=15, local_steps=1, batch_size=8)
    history = run_async_federated(
        toy_federation, _model_fn(toy_federation),
        _speeds(toy_federation, [1.0, 2.0, 3.0, 4.0]), config,
    )
    sim_times = [r.sim_time for r in history.records]
    assert all(a <= b for a, b in zip(sim_times, sim_times[1:]))


def test_async_learns_on_iid(iid_federation):
    config = AsyncConfig(max_updates=80, local_steps=3, batch_size=16,
                         lr=0.2, alpha=0.5, eval_every=20)
    history = run_async_federated(
        iid_federation, _model_fn(iid_federation),
        _speeds(iid_federation, [1.0, 1.2, 0.9, 1.1]), config,
    )
    assert history.final_accuracy > 0.45


def test_deterministic(toy_federation):
    config = AsyncConfig(max_updates=8, local_steps=1, batch_size=8)
    speeds = _speeds(toy_federation, [1.0, 2.0, 1.5, 1.2])
    a = run_async_federated(toy_federation, _model_fn(toy_federation), speeds, config)
    b = run_async_federated(toy_federation, _model_fn(toy_federation), speeds, config)
    assert [r.train_loss for r in a.records] == [r.train_loss for r in b.records]
