"""Stream framing tests (:mod:`repro.fl.wire` framing layer).

The serve transport ships RFW1 messages over byte streams, so framing
must survive arbitrary fragmentation and reject corruption with
:class:`WireError` — never ``IndexError`` / ``struct.error`` leaking
out of the decoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WireError
from repro.fl import wire


def _message(seed: int = 0) -> bytes:
    gen = np.random.default_rng(seed)
    return wire.pack(
        "generic",
        {
            "params": gen.normal(size=13),
            "mask": np.array([1, 0, 1], dtype=np.uint8),
            "round": int(seed),
            "loss": 0.5,
        },
    )


# -- frame() ----------------------------------------------------------------------


def test_frame_prepends_length_prefix():
    message = _message()
    framed = wire.frame(message)
    assert framed[: wire.FRAME_PREFIX.size] == wire.FRAME_PREFIX.pack(len(message))
    assert framed[wire.FRAME_PREFIX.size :] == message


def test_frame_rejects_empty_message():
    with pytest.raises(WireError, match="empty"):
        wire.frame(b"")


def test_frame_rejects_oversized_message():
    class _Huge(bytes):
        def __len__(self) -> int:  # avoid allocating 2 GiB for real
            return wire.MAX_FRAME_BYTES + 1

    with pytest.raises(WireError, match="frame limit"):
        wire.frame(_Huge(b"x"))


# -- reassembly under fragmentation -----------------------------------------------


def test_single_feed_round_trip():
    message = _message()
    assembler = wire.FrameAssembler()
    frames = assembler.feed(wire.frame(message))
    assert frames == [message]
    assert assembler.pending_bytes == 0


def test_split_at_every_boundary():
    """Property-style: any single split point reassembles identically."""
    message = _message(1)
    framed = wire.frame(message)
    for cut in range(len(framed) + 1):
        assembler = wire.FrameAssembler()
        frames = assembler.feed(framed[:cut])
        frames += assembler.feed(framed[cut:])
        assert frames == [message], f"split at byte {cut} corrupted the frame"
        assert assembler.pending_bytes == 0


def test_one_byte_dribble():
    message = _message(2)
    framed = wire.frame(message)
    assembler = wire.FrameAssembler()
    frames: list[bytes] = []
    for i in range(len(framed)):
        frames += assembler.feed(framed[i : i + 1])
        if i < len(framed) - 1:
            assert frames == []
            assert assembler.pending_bytes == i + 1
    assert frames == [message]


def test_concatenated_frames_in_one_feed():
    messages = [_message(s) for s in range(4)]
    blob = b"".join(wire.frame(m) for m in messages)
    assembler = wire.FrameAssembler()
    assert assembler.feed(blob) == messages


def test_concatenated_frames_split_at_every_boundary():
    messages = [_message(10), _message(11)]
    blob = b"".join(wire.frame(m) for m in messages)
    # Sweep a stride through the concatenated stream so splits land both
    # inside prefixes and across frame boundaries.
    for stride in (1, 3, 7, wire.FRAME_PREFIX.size, 64):
        assembler = wire.FrameAssembler()
        frames: list[bytes] = []
        for i in range(0, len(blob), stride):
            frames += assembler.feed(blob[i : i + stride])
        assert frames == messages, f"stride {stride} corrupted the stream"
        assert assembler.pending_bytes == 0


def test_reassembled_frames_are_independent_copies():
    """Payloads must stay valid after the assembler's buffer mutates."""
    m1, m2 = _message(20), _message(21)
    assembler = wire.FrameAssembler()
    (first,) = assembler.feed(wire.frame(m1))
    assembler.feed(wire.frame(m2))
    assert first == m1
    kind, out = wire.unpack(first)
    assert kind == "generic"


# -- corruption -------------------------------------------------------------------


def test_zero_length_frame_is_corruption():
    assembler = wire.FrameAssembler()
    with pytest.raises(WireError, match="corrupt"):
        assembler.feed(wire.FRAME_PREFIX.pack(0))


def test_oversized_declared_length_is_corruption():
    """A torn prefix read as a huge length must fail fast, not buffer."""
    assembler = wire.FrameAssembler()
    with pytest.raises(WireError, match="corrupt"):
        assembler.feed(wire.FRAME_PREFIX.pack(wire.MAX_FRAME_BYTES + 1))


def test_custom_frame_limit():
    assembler = wire.FrameAssembler(max_frame_bytes=16)
    with pytest.raises(WireError, match="corrupt"):
        assembler.feed(wire.FRAME_PREFIX.pack(17))


# -- corrupted-message regression matrix ------------------------------------------


def test_unpack_truncation_at_every_length():
    """Every possible truncation raises WireError — never IndexError or
    struct.error from the decoder internals."""
    message = _message(3)
    for cut in range(len(message)):
        with pytest.raises(WireError):
            wire.unpack(message[:cut])


def test_unpack_single_byte_corruption_never_leaks_internal_errors():
    """Flip every byte of a valid message: unpack must either succeed
    (the flip landed in payload data) or raise WireError."""
    message = bytearray(_message(4))
    for i in range(len(message)):
        corrupted = bytearray(message)
        corrupted[i] ^= 0xFF
        try:
            wire.unpack(bytes(corrupted))
        except WireError:
            pass  # the only acceptable failure mode


def test_unpack_oversized_declared_dims():
    """Hostile u64 dims cannot overflow into a 'valid' segment size."""
    message = bytearray(_message(5))
    # The first segment entry's dims sit right after the fixed header +
    # entry-fixed block; stamp a huge u64 over the first dim.
    import struct as _struct

    pos = wire._HEADER.size + wire._ENTRY_FIXED.size
    _struct.pack_into("<Q", message, pos, 1 << 62)
    with pytest.raises(WireError):
        wire.unpack(bytes(message))
