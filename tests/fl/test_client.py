"""Client-side primitive tests."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.client import compute_mean_embedding, evaluate_model, local_sgd_steps
from repro.fl.config import FLConfig
from repro.models import build_mlp
from repro.nn.serialization import get_flat_params


def _data(n=60, dim=10, classes=3, seed=0):
    gen = np.random.default_rng(seed)
    y = gen.integers(0, classes, n)
    means = gen.normal(0, 2.0, size=(classes, dim))
    x = means[y] + gen.normal(0, 0.3, size=(n, dim))
    return ArrayDataset(x.reshape(n, 1, 1, dim), y)


def _model(rng, dim=10, classes=3):
    return build_mlp(dim, classes, rng, (16,), feature_dim=8)


def test_local_sgd_reduces_loss(rng):
    model = _model(rng)
    data = _data()
    config = FLConfig(rounds=1, local_steps=40, batch_size=16, lr=0.2)
    loss_before, _ = evaluate_model(model, data)
    local_sgd_steps(model, data, config, rng)
    loss_after, _ = evaluate_model(model, data)
    assert loss_after < loss_before


def test_local_sgd_returns_mean_losses(rng):
    model = _model(rng)
    config = FLConfig(rounds=1, local_steps=5, batch_size=8, lr=0.1)
    result = local_sgd_steps(model, _data(), config, rng)
    assert result.num_steps == 5
    assert result.mean_task_loss > 0
    assert result.mean_reg_loss == 0.0  # no hook given


def test_local_sgd_applies_reg_hook(rng):
    model = _model(rng)
    config = FLConfig(rounds=1, local_steps=3, batch_size=8, lr=0.1)
    calls = []

    def reg_hook(features):
        calls.append(features.shape)
        return 0.25, np.zeros_like(features)

    result = local_sgd_steps(model, _data(), config, rng, reg_hook=reg_hook)
    assert len(calls) == 3
    assert all(shape == (8, 8) for shape in calls)
    assert result.mean_reg_loss == pytest.approx(0.25)


def test_reg_hook_returning_none_is_skipped(rng):
    model = _model(rng)
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1)
    result = local_sgd_steps(model, _data(), config, rng, reg_hook=lambda f: None)
    assert result.mean_reg_loss == 0.0


def test_grad_hook_can_freeze_training(rng):
    """A hook that zeroes all gradients must leave parameters unchanged."""
    model = _model(rng)
    before = get_flat_params(model)
    config = FLConfig(rounds=1, local_steps=4, batch_size=8, lr=0.5)

    def freeze(m):
        for p in m.parameters():
            p.grad[...] = 0.0

    local_sgd_steps(model, _data(), config, rng, grad_hook=freeze)
    np.testing.assert_array_equal(get_flat_params(model), before)


def test_step_offset_shifts_schedule(rng):
    from repro.nn.optim import InverseDecayLR

    data = _data()
    config = FLConfig(
        rounds=1, local_steps=1, batch_size=60, lr=0.0,
        lr_schedule=InverseDecayLR(scale=1.0, gamma=1.0),
    )
    gen_a = np.random.default_rng(0)
    gen_b = np.random.default_rng(0)
    model_a = _model(np.random.default_rng(1))
    model_b = _model(np.random.default_rng(1))
    local_sgd_steps(model_a, data, config, gen_a, step_offset=0)  # lr=1
    local_sgd_steps(model_b, data, config, gen_b, step_offset=9)  # lr=0.1
    start = get_flat_params(_model(np.random.default_rng(1)))
    step_a = np.linalg.norm(get_flat_params(model_a) - start)
    step_b = np.linalg.norm(get_flat_params(model_b) - start)
    assert step_a > 5 * step_b


def test_evaluate_model_perfect_and_chance(rng):
    model = _model(rng)
    data = _data(n=40)
    loss, acc = evaluate_model(model, data)
    assert 0.0 <= acc <= 1.0
    assert loss > 0.0


def test_evaluate_model_batching_invariance(rng):
    model = _model(rng)
    data = _data(n=50)
    loss_small, acc_small = evaluate_model(model, data, batch_size=7)
    loss_big, acc_big = evaluate_model(model, data, batch_size=500)
    assert loss_small == pytest.approx(loss_big)
    assert acc_small == pytest.approx(acc_big)


def test_compute_mean_embedding_matches_manual(rng):
    model = _model(rng)
    data = _data(n=30)
    delta = compute_mean_embedding(model, data, batch_size=7)
    feats = model.features.forward(data.x)
    np.testing.assert_allclose(delta, feats.mean(axis=0))


def test_compute_mean_embedding_restores_train_mode(rng):
    model = _model(rng)
    model.train()
    compute_mean_embedding(model, _data(n=10))
    assert model.training


def test_local_sgd_deterministic_given_rng(rng):
    data = _data()
    config = FLConfig(rounds=1, local_steps=5, batch_size=8, lr=0.1)
    model_a = _model(np.random.default_rng(2))
    model_b = _model(np.random.default_rng(2))
    local_sgd_steps(model_a, data, config, np.random.default_rng(77))
    local_sgd_steps(model_b, data, config, np.random.default_rng(77))
    np.testing.assert_array_equal(get_flat_params(model_a), get_flat_params(model_b))
