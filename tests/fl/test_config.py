"""FLConfig validation tests."""

import pytest

from repro.exceptions import ConfigError
from repro.fl.config import FLConfig


def test_defaults_valid():
    config = FLConfig()
    assert config.rounds == 30
    assert config.sample_ratio == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rounds": 0},
        {"local_steps": 0},
        {"batch_size": 0},
        {"sample_ratio": 0.0},
        {"sample_ratio": 1.5},
        {"eval_every": 0},
    ],
)
def test_invalid_fields_rejected(kwargs):
    with pytest.raises(ConfigError):
        FLConfig(**kwargs)


def test_with_updates_returns_new_config():
    config = FLConfig(rounds=10)
    updated = config.with_updates(rounds=20, lr=0.5)
    assert updated.rounds == 20
    assert updated.lr == 0.5
    assert config.rounds == 10  # original untouched


def test_with_updates_validates():
    with pytest.raises(ConfigError):
        FLConfig().with_updates(rounds=-1)


def test_config_is_frozen():
    config = FLConfig()
    with pytest.raises(Exception):
        config.rounds = 99


# -- the shared choice-knob registry ------------------------------------------------


def test_choice_registry_covers_all_choice_knobs():
    from repro.fl.config import CHOICES

    assert set(CHOICES) >= {
        "executor", "transport", "execution", "runtime", "optimizer", "dtype"
    }


@pytest.mark.parametrize(
    "kwargs,suggestion",
    [
        ({"executor": "proces"}, "process"),
        ({"transport": "wrie"}, "wire"),
        ({"execution": "asynch"}, "async"),
        ({"runtime": "instan"}, "instant"),
        ({"optimizer": "adan"}, "adam"),
        ({"dtype": "float62"}, "float64"),
    ],
)
def test_choice_knob_typos_get_suggestions(kwargs, suggestion):
    with pytest.raises(ConfigError, match=f"did you mean {suggestion!r}"):
        FLConfig(**kwargs)


def test_validate_choice_message_is_shared():
    # CLI / FLConfig / make_runtime all funnel through one validator,
    # so the message shape is identical everywhere.
    from repro.fl.config import validate_choice

    with pytest.raises(ConfigError, match=r"executor must be one of"):
        validate_choice("executor", "nope")


def test_runtime_spec_validates_head_only():
    # Parameterized specs ('gaussian:het=2', 'trace:file.json') pass the
    # registry check on their head; bad heads are rejected.
    FLConfig(runtime="gaussian:het=2.0")
    FLConfig(runtime="trace:/some/file.json")
    with pytest.raises(ConfigError):
        FLConfig(runtime="uniform:lo=1,hi=2")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"buffer_size": 0},
        {"buffer_timeout": 0.0},
        {"buffer_timeout": -1.0},
        {"staleness_exponent": -0.1},
    ],
)
def test_invalid_async_fields_rejected(kwargs):
    with pytest.raises(ConfigError):
        FLConfig(**kwargs)
