"""FLConfig validation tests."""

import pytest

from repro.exceptions import ConfigError
from repro.fl.config import FLConfig


def test_defaults_valid():
    config = FLConfig()
    assert config.rounds == 30
    assert config.sample_ratio == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rounds": 0},
        {"local_steps": 0},
        {"batch_size": 0},
        {"sample_ratio": 0.0},
        {"sample_ratio": 1.5},
        {"eval_every": 0},
    ],
)
def test_invalid_fields_rejected(kwargs):
    with pytest.raises(ConfigError):
        FLConfig(**kwargs)


def test_with_updates_returns_new_config():
    config = FLConfig(rounds=10)
    updated = config.with_updates(rounds=20, lr=0.5)
    assert updated.rounds == 20
    assert updated.lr == 0.5
    assert config.rounds == 10  # original untouched


def test_with_updates_validates():
    with pytest.raises(ConfigError):
        FLConfig().with_updates(rounds=-1)


def test_config_is_frozen():
    config = FLConfig()
    with pytest.raises(Exception):
        config.rounds = 99
