"""Hierarchical FL tests: topology parsing, region partitions, the
region-parallel engine behind ``FLConfig(topology=...)``, and the
deprecated eager shims."""

import warnings

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.exceptions import CheckpointError, ConfigError
from repro.fl.config import FLConfig, parse_topology_spec
from repro.fl.hierarchy import (
    HierarchyConfig,
    RegionSet,
    assign_edges,
    run_hier_federated,
    run_hierarchical,
)
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _config(**kwargs):
    base = dict(rounds=6, local_steps=2, batch_size=8, lr=0.2, seed=0, eval_every=3)
    base.update(kwargs)
    return FLConfig(**base)


def _divergence(region_params):
    stacked = np.stack(region_params)
    return float(np.linalg.norm(stacked - stacked.mean(axis=0), axis=1).mean())


# -- topology spec -------------------------------------------------------------


def test_parse_topology_spec():
    assert parse_topology_spec("flat") == (1, 1)
    assert parse_topology_spec("hier:4:2") == (4, 2)
    assert parse_topology_spec("hier:1:1") == (1, 1)


@pytest.mark.parametrize(
    "spec",
    ["flat:2", "hier", "hier:4", "hier:4:2:1", "hier:x:2", "hier:0:2", "hier:4:0"],
)
def test_bad_topology_specs_rejected(spec):
    with pytest.raises(ConfigError):
        parse_topology_spec(spec)


def test_topology_typo_suggestion():
    with pytest.raises(ConfigError, match="hier"):
        parse_topology_spec("heir:4:2")


def test_config_validates_topology():
    with pytest.raises(ConfigError):
        FLConfig(topology="hier:0:1")
    with pytest.raises(ConfigError, match="execution"):
        FLConfig(topology="hier:2:2", execution="async")
    with pytest.raises(ConfigError):
        FLConfig(cloud_compression="bogus")


# -- RegionSet -----------------------------------------------------------------


def test_region_set_partitions_population():
    regions = RegionSet(10, 3)
    assert regions.region_sizes().tolist() == [4, 3, 3]
    assert regions.bounds.tolist() == [0, 4, 7, 10]
    ids = np.arange(10)
    np.testing.assert_array_equal(regions.region_of(ids), [0, 0, 0, 0, 1, 1, 1, 2, 2, 2])


def test_region_set_split_cohort():
    regions = RegionSet(10, 3)
    cohort = np.array([0, 3, 4, 9], dtype=np.int64)
    parts = regions.split_cohort(cohort)
    assert [p.tolist() for p in parts] == [[0, 3], [4], [9]]
    # A cohort that skips a region yields an empty slice for it.
    parts = regions.split_cohort(np.array([1, 8], dtype=np.int64))
    assert [p.tolist() for p in parts] == [[1], [], [8]]


def test_region_set_validation():
    with pytest.raises(ConfigError):
        RegionSet(4, 0)
    with pytest.raises(ConfigError):
        RegionSet(4, 5)
    # One region per client is the finest legal partition.
    assert RegionSet(4, 4).region_sizes().tolist() == [1, 1, 1, 1]


# -- engine behaviour ----------------------------------------------------------


def test_hier_one_one_matches_flat(toy_federation):
    config = _config()
    flat = make_algorithm("fedavg")
    flat_history = run_federated(flat, toy_federation, _model_fn(toy_federation), config)
    hier = make_algorithm("fedavg")
    hier_history = run_federated(
        hier, toy_federation, _model_fn(toy_federation),
        config.with_updates(topology="hier:1:1"),
    )
    np.testing.assert_array_equal(flat.global_params, hier.global_params)
    for a, b in zip(flat_history.records, hier_history.records):
        assert a.train_loss == b.train_loss
        assert a.bytes_up == b.bytes_up and a.bytes_down == b.bytes_down
        assert a.test_accuracy == b.test_accuracy


def test_cloud_sync_resets_region_divergence(toy_federation):
    observed = []
    run_federated(
        make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
        _config(local_steps=4, topology="hier:2:3"),
        region_observer=lambda info: observed.append(
            (info["round"], info["cloud_sync"], _divergence(info["region_params"]))
        ),
    )
    assert len(observed) == 6
    sync_rounds = [r for r, sync, _d in observed if sync]
    assert sync_rounds == [2, 5]
    for _r, sync, div in observed:
        if sync:
            assert div == pytest.approx(0.0)
    # Between syncs the regions drift apart.
    assert observed[1][2] > 0.0


def test_cloud_traffic_cheaper_than_client_traffic(toy_federation):
    """The point of hierarchy: WAN (cloud) bytes << LAN (client) bytes."""
    rounds_bytes = []
    run_federated(
        make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
        _config(topology="hier:2:3"),
        region_observer=lambda info: rounds_bytes.append(info["bytes"]),
    )
    cloud = sum(
        v for rc in rounds_bytes for k, v in rc.items()
        if k.partition(":")[2] == "cloud-model"
    )
    total = sum(rc["up"] + rc["down"] for rc in rounds_bytes)
    assert 0 < cloud < total - cloud


def test_cloud_compression_shrinks_cloud_bytes(toy_federation):
    def cloud_up(spec):
        rounds_bytes = []
        run_federated(
            make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
            _config(topology="hier:2:2", cloud_compression=spec),
            region_observer=lambda info: rounds_bytes.append(info["bytes"]),
        )
        return sum(
            v for rc in rounds_bytes for k, v in rc.items()
            if k.startswith("up") and k.partition(":")[2] == "cloud-model"
        )

    dense, compressed = cloud_up("none"), cloud_up("topk:0.1")
    assert 0 < compressed < dense


def test_empty_region_round(toy_federation):
    """A cohort can miss a region entirely; the round must still work and
    the starved region's model must stay put until the next cloud sync."""
    seen = []

    class Region0Only:
        def select(self, context):
            # Only clients from region 0 (clients 0-1 of 4 under R=2).
            return np.array([0, 1], dtype=np.int64)

    run_federated(
        make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
        _config(rounds=2, topology="hier:2:4"),
        selector=Region0Only(),
        region_observer=lambda info: seen.append(info["region_params"]),
    )
    # Region 1 never trained and never synced: its params are unchanged
    # across both rounds.
    np.testing.assert_array_equal(seen[0][1], seen[1][1])
    # Region 0 moved.
    assert not np.array_equal(seen[0][0], seen[1][0])


def test_single_client_regions(toy_federation):
    """R == N: every region holds exactly one client."""
    history = run_federated(
        make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
        _config(topology="hier:4:3"),
    )
    assert len(history.records) == 6
    assert history.final_accuracy is not None


def test_stratified_sampler_hier_identity(toy_federation):
    """Stratified cohorts compose with region slices: hier:1:1 still
    reproduces the flat engine exactly."""
    config = _config(sample_ratio=0.5, sampler="stratified:2")
    flat = make_algorithm("fedavg")
    run_federated(flat, toy_federation, _model_fn(toy_federation), config)
    hier = make_algorithm("fedavg")
    run_federated(
        hier, toy_federation, _model_fn(toy_federation),
        config.with_updates(topology="hier:1:1"),
    )
    np.testing.assert_array_equal(flat.global_params, hier.global_params)


def test_rfedavg_exact_refuses_multiple_regions(toy_federation):
    with pytest.raises(ConfigError, match="rfedavg_exact"):
        run_federated(
            make_algorithm("rfedavg_exact", lam=1e-3), toy_federation,
            _model_fn(toy_federation), _config(topology="hier:2:2"),
        )


def test_rfedavg_exact_single_region_period_works(toy_federation):
    history = run_federated(
        make_algorithm("rfedavg_exact", lam=1e-3), toy_federation,
        _model_fn(toy_federation), _config(rounds=2, topology="hier:1:4"),
    )
    assert len(history.records) == 2


def test_more_regions_than_clients_rejected(toy_federation):
    with pytest.raises(ConfigError):
        run_federated(
            make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
            _config(topology="hier:5:2"),
        )


def test_region_observer_requires_hier(toy_federation):
    with pytest.raises(ConfigError, match="region_observer"):
        run_federated(
            make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
            _config(), region_observer=lambda info: None,
        )


def test_flat_checkpoint_refused_by_hier_resume(toy_federation, tmp_path):
    config = _config(rounds=2, checkpoint_dir=str(tmp_path), checkpoint_every=1)
    run_federated(make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation), config)
    with pytest.raises(CheckpointError):
        run_federated(
            make_algorithm("fedavg"), toy_federation, _model_fn(toy_federation),
            config.with_updates(resume=True, topology="hier:2:2"),
        )


def test_learns_on_iid(iid_federation):
    history = run_federated(
        make_algorithm("fedavg"), iid_federation, _model_fn(iid_federation),
        _config(rounds=15, local_steps=4, lr=0.3, topology="hier:2:3", eval_every=5),
    )
    assert history.final_accuracy > 0.45


# -- deprecated eager API ------------------------------------------------------


def test_hierarchy_config_validation():
    with pytest.raises(ConfigError):
        HierarchyConfig(edge_rounds=0)
    with pytest.raises(ConfigError):
        HierarchyConfig(edge_period=0)


def test_assign_edges_partitions_clients(rng):
    assignment = assign_edges(10, 3, rng)
    assert len(assignment) == 3
    joined = np.sort(np.concatenate(assignment))
    np.testing.assert_array_equal(joined, np.arange(10))
    assert all(len(a) >= 1 for a in assignment)


def test_assign_edges_validation(rng):
    with pytest.raises(ConfigError):
        assign_edges(3, 4, rng)
    with pytest.raises(ConfigError):
        assign_edges(3, 0, rng)


def test_run_hierarchical_shim_warns_and_delegates(toy_federation):
    import repro.fl.hierarchy as hierarchy_module

    hierarchy_module._RUN_HIERARCHICAL_WARNED = False
    with pytest.warns(DeprecationWarning, match="run_hierarchical"):
        history = run_hierarchical(
            toy_federation, _model_fn(toy_federation),
            FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.2, seed=0),
            HierarchyConfig(edge_rounds=6, edge_period=3), num_edges=2,
        )
    assert len(history.records) == 6
    assert history.cloud_rounds() == [2, 5]
    assert history.final_accuracy is not None
    divergence = history.edge_divergence_series()
    for cloud_round in history.cloud_rounds():
        assert divergence[cloud_round] == pytest.approx(0.0)
    assert divergence[1] > 0.0
    # The warning fires once: a second call under an error filter is clean.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run_hierarchical(
            toy_federation, _model_fn(toy_federation),
            FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.2, seed=0),
            HierarchyConfig(edge_rounds=3, edge_period=3), num_edges=2,
        )
