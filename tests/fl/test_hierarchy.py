"""Hierarchical FL tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.hierarchy import (
    HierarchyConfig,
    assign_edges,
    run_hierarchical,
)
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _config(**kwargs):
    base = dict(rounds=1, local_steps=2, batch_size=8, lr=0.2, seed=0)
    base.update(kwargs)
    return FLConfig(**base)


def test_hierarchy_config_validation():
    with pytest.raises(ConfigError):
        HierarchyConfig(edge_rounds=0)
    with pytest.raises(ConfigError):
        HierarchyConfig(edge_period=0)


def test_assign_edges_partitions_clients(rng):
    assignment = assign_edges(10, 3, rng)
    assert len(assignment) == 3
    joined = np.sort(np.concatenate(assignment))
    np.testing.assert_array_equal(joined, np.arange(10))
    assert all(len(a) >= 1 for a in assignment)


def test_assign_edges_validation(rng):
    with pytest.raises(ConfigError):
        assign_edges(3, 4, rng)
    with pytest.raises(ConfigError):
        assign_edges(3, 0, rng)


def test_run_records_every_edge_round(toy_federation):
    history = run_hierarchical(
        toy_federation, _model_fn(toy_federation), _config(),
        HierarchyConfig(edge_rounds=6, edge_period=3), num_edges=2,
    )
    assert len(history.records) == 6
    assert history.cloud_rounds() == [2, 5]
    assert history.final_accuracy is not None


def test_cloud_sync_resets_edge_divergence(toy_federation):
    history = run_hierarchical(
        toy_federation, _model_fn(toy_federation), _config(local_steps=4),
        HierarchyConfig(edge_rounds=6, edge_period=3), num_edges=2,
    )
    divergence = history.edge_divergence_series()
    # Right after a cloud sync the edges are identical.
    for cloud_round in history.cloud_rounds():
        assert divergence[cloud_round] == pytest.approx(0.0)
    # Between syncs the edges drift apart.
    assert divergence[1] > 0.0


def test_single_edge_is_flat_fedavg(toy_federation):
    """With one edge that syncs every round, hierarchy == FedAvg."""
    from repro.algorithms import FedAvg
    from repro.fl.trainer import run_federated
    from repro.nn.serialization import set_flat_params, get_flat_params

    config = _config()
    history = run_hierarchical(
        toy_federation, _model_fn(toy_federation), config,
        HierarchyConfig(edge_rounds=3, edge_period=1), num_edges=1,
    )
    flat = FedAvg()
    run_federated(
        flat, toy_federation, _model_fn(toy_federation),
        config.with_updates(rounds=3),
    )
    # Same local rng keys (seed, round, client) -> identical trajectories.
    model = _model_fn(toy_federation)()
    set_flat_params(model, flat.global_params)
    expected = get_flat_params(model)
    # The hierarchical cloud params after the last sync equal FedAvg's.
    assert history.final_accuracy is not None
    # Compare accuracies as a robust proxy (parameters live inside run).
    from repro.fl.client import evaluate_model

    _loss, acc = evaluate_model(model, toy_federation.test)
    assert history.final_accuracy == pytest.approx(acc)


def test_cloud_traffic_cheaper_than_client_traffic(toy_federation):
    """The point of hierarchy: WAN (cloud) bytes << LAN (edge) bytes."""
    history = run_hierarchical(
        toy_federation, _model_fn(toy_federation), _config(),
        HierarchyConfig(edge_rounds=6, edge_period=3), num_edges=2,
    )
    edge_bytes = sum(
        r["bytes"].get("down:edge-model", 0) + r["bytes"].get("up:edge-model", 0)
        for r in history.records
    )
    cloud_bytes = sum(
        r["bytes"].get("down:cloud-model", 0) + r["bytes"].get("up:cloud-model", 0)
        for r in history.records
    )
    assert cloud_bytes < edge_bytes


def test_learns_on_iid(iid_federation):
    history = run_hierarchical(
        iid_federation, _model_fn(iid_federation),
        _config(local_steps=4, lr=0.3),
        HierarchyConfig(edge_rounds=15, edge_period=3), num_edges=2,
    )
    assert history.final_accuracy > 0.45
