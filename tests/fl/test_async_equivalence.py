"""Zero-latency async == sync equivalence matrix.

With instant runtimes and a full-cohort buffer, the event-driven async
engine must reproduce the synchronous barrier loop **bit-identically**
for every registered algorithm: every dispatched update arrives fresh
and in selection order, so the buffered flush is the synchronous round
verbatim.  This is the contract that makes async a scheduler swap
rather than a numerical change.

Mirrors the serial/parallel matrix in ``test_parallel_equivalence.py``
(same config, same slow marks); one cross-cutting case also runs the
async engine on top of the process executor.
"""

from __future__ import annotations

import os

import pytest

from repro.algorithms import ALGORITHMS
from repro.fl.config import FLConfig
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers

WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "4"))

# (name, constructor kwargs, slow?) — one row per registered algorithm.
MATRIX = [
    ("fedavg", {}, False),
    ("fedavgm", {}, False),
    ("fednova", {}, False),
    ("fedprox", {"mu": 0.1}, False),
    ("moon", {"mu": 0.5}, True),
    ("scaffold", {}, False),
    ("qfedavg", {"q": 1.0}, False),
    ("rfedavg", {"lam": 1e-3}, True),
    ("rfedavg+", {"lam": 1e-3}, False),
    ("rfedavg_exact", {"lam": 1e-3}, True),
]


def _config(**overrides) -> FLConfig:
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=11)
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def test_matrix_covers_every_registered_algorithm():
    """A new algorithm must be added to the async equivalence matrix."""
    assert {name for name, _, _ in MATRIX} == set(ALGORITHMS)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in MATRIX
    ],
)
def test_zero_latency_async_is_bit_identical(fed, name, kwargs):
    sync = run_with_workers(name, kwargs, fed, _config(), num_workers=1)
    asynchronous = run_with_workers(
        name, kwargs, fed, _config(execution="async"), num_workers=1
    )
    assert_equivalent_runs(sync, asynchronous)
    async_history = asynchronous[1].async_history
    assert async_history.max_staleness() == 0
    assert async_history.discarded_updates == 0


def test_zero_latency_async_with_partial_participation(fed):
    """Cohort sampling consumes the selection RNG identically."""
    config = _config(sample_ratio=0.5, rounds=4)
    sync = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    asynchronous = run_with_workers(
        "fedavg", {}, fed, config.with_updates(execution="async"), num_workers=1
    )
    assert_equivalent_runs(sync, asynchronous)


def test_zero_latency_async_under_parallel_wire(fed):
    """The async engine composes with the process executor + packed
    wire transport without breaking the identity."""
    sync = run_with_workers("scaffold", {}, fed, _config(), num_workers=1)
    asynchronous = run_with_workers(
        "scaffold", {}, fed, _config(execution="async"),
        num_workers=WORKERS, executor="process", transport="wire",
    )
    assert_equivalent_runs(sync, asynchronous)
