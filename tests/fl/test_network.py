"""Network cost model tests."""

import pytest

from repro.exceptions import ConfigError
from repro.fl.comm import CommLedger
from repro.fl.network import LinkModel, estimate_run_network_time, round_network_time


def test_link_validation():
    with pytest.raises(ConfigError):
        LinkModel(server_bandwidth_bps=0)
    with pytest.raises(ConfigError):
        LinkModel(latency_sec=-1.0)


def test_round_time_components():
    link = LinkModel(server_bandwidth_bps=100.0, client_bandwidth_bps=10.0, latency_sec=0.5)
    # 200 B down at 100 B/s = 2 s; 50 B/client up at 10 B/s = 1 s; 2*0.5 latency.
    t = round_network_time(bytes_down=200, bytes_up=250, num_clients=5, link=link)
    assert t == pytest.approx(2.0 + 5.0 + 1.0)


def test_latency_scales_with_sync_phases():
    link = LinkModel(latency_sec=0.1)
    single = round_network_time(0, 0, 4, link, sync_phases=1)
    double = round_network_time(0, 0, 4, link, sync_phases=2)
    assert double == pytest.approx(2 * single)


def test_invalid_clients():
    with pytest.raises(ConfigError):
        round_network_time(1, 1, 0, LinkModel())


def test_estimate_from_ledger():
    ledger = CommLedger(dtype_bytes=1)
    for _ in range(3):
        ledger.charge(CommLedger.DOWN, "model", 1000)
        ledger.charge(CommLedger.UP, "model", 1000)
        ledger.end_round()
    link = LinkModel(server_bandwidth_bps=1000.0, client_bandwidth_bps=100.0, latency_sec=0.0)
    total = estimate_run_network_time(ledger, num_clients=10, link=link)
    # Per round: 1 s down + (100 B/client / 100 B/s) = 1 s -> 2 s; x3 rounds.
    assert total == pytest.approx(6.0)


def test_bigger_payload_costs_more():
    ledger_small = CommLedger(dtype_bytes=1)
    ledger_small.charge(CommLedger.DOWN, "model", 10)
    ledger_small.end_round()
    ledger_big = CommLedger(dtype_bytes=1)
    ledger_big.charge(CommLedger.DOWN, "model", 10_000_000)
    ledger_big.end_round()
    assert estimate_run_network_time(ledger_big, 5) > estimate_run_network_time(
        ledger_small, 5
    )
