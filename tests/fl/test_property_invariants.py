"""Property-based invariant tests (seeded pure-stdlib generators).

Randomized but fully deterministic: every case derives its inputs from
``random.Random(seed)``, so failures replay exactly.  Covered invariants:

* aggregation weights normalize to 1 and the average is scale-invariant
  and stays inside the per-coordinate convex hull;
* per-``(round, client)`` rng streams are pairwise disjoint — the
  property the parallel engine's determinism contract rests on;
* ``History`` JSON round-trips exactly and ignores unknown keys;
* ledger upload accounting is independent of client completion order.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.algorithms import FedAvg
from repro.fl.comm import CommLedger
from repro.fl.metrics import History, RoundRecord
from repro.fl.parallel import ClientUpdate
from repro.fl.server import weighted_average

CASES = range(20)


def _rng_vectors(gen: random.Random, count: int, dim: int) -> list[np.ndarray]:
    return [
        np.array([gen.uniform(-10.0, 10.0) for _ in range(dim)]) for _ in range(count)
    ]


# -- aggregation -----------------------------------------------------------------


@pytest.mark.parametrize("case", CASES)
def test_weighted_average_normalizes_and_is_scale_invariant(case):
    gen = random.Random(1000 + case)
    count = gen.randint(1, 8)
    dim = gen.randint(1, 12)
    vectors = _rng_vectors(gen, count, dim)
    weights = np.array([gen.uniform(0.1, 100.0) for _ in range(count)])

    averaged = weighted_average(vectors, weights)
    # Normalized weights sum to 1 -> explicit convex combination matches.
    norm = weights / weights.sum()
    assert abs(norm.sum() - 1.0) < 1e-12
    expected = np.sum([w * v for w, v in zip(norm, vectors)], axis=0)
    np.testing.assert_allclose(averaged, expected, rtol=1e-12)
    # Scaling every weight by the same constant changes nothing.
    scale = gen.uniform(0.01, 1000.0)
    np.testing.assert_allclose(averaged, weighted_average(vectors, weights * scale))


@pytest.mark.parametrize("case", CASES)
def test_weighted_average_stays_in_per_coordinate_hull(case):
    gen = random.Random(2000 + case)
    count = gen.randint(1, 6)
    dim = gen.randint(1, 10)
    vectors = _rng_vectors(gen, count, dim)
    weights = np.array([gen.uniform(0.0, 5.0) for _ in range(count)])
    weights[gen.randrange(count)] += 0.5  # keep the sum positive
    averaged = weighted_average(vectors, weights)
    stacked = np.stack(vectors)
    assert (averaged >= stacked.min(axis=0) - 1e-12).all()
    assert (averaged <= stacked.max(axis=0) + 1e-12).all()


# -- per-(round, client) randomness ----------------------------------------------


@pytest.mark.parametrize("case", CASES)
def test_client_rng_streams_are_disjoint_across_rounds_and_clients(case):
    gen = random.Random(3000 + case)
    algorithm = FedAvg()

    class _Config:
        seed = gen.randint(0, 2**16)

    algorithm.config = _Config()
    pairs = {(gen.randint(0, 200), gen.randint(0, 200)) for _ in range(12)}
    draws = {
        pair: tuple(algorithm.client_rng(*pair).random(4)) for pair in pairs
    }
    values = list(draws.values())
    assert len(set(values)) == len(values), "rng streams collide"
    # And the streams are reproducible: same (round, client) -> same draw.
    for pair, value in draws.items():
        assert tuple(algorithm.client_rng(*pair).random(4)) == value


# -- History persistence ---------------------------------------------------------


def _random_record(gen: random.Random, round_idx: int) -> RoundRecord:
    return RoundRecord(
        round_idx=round_idx,
        train_loss=gen.uniform(0.0, 5.0),
        test_accuracy=gen.choice([None, gen.uniform(0.0, 1.0)]),
        test_loss=gen.choice([None, gen.uniform(0.0, 5.0)]),
        reg_loss=gen.uniform(0.0, 1.0),
        wall_time_sec=gen.uniform(0.0, 10.0),
        bytes_down=gen.randint(0, 10**9),
        bytes_up=gen.randint(0, 10**9),
        num_selected=gen.randint(1, 64),
    )


@pytest.mark.parametrize("case", CASES)
def test_history_json_round_trip_survives_unknown_keys(case):
    gen = random.Random(4000 + case)
    history = History(algorithm=f"alg{case}")
    for round_idx in range(gen.randint(0, 6)):
        history.append(_random_record(gen, round_idx))
    history.final_accuracy = gen.choice([None, gen.uniform(0.0, 1.0)])

    data = json.loads(history.to_json())
    # Inject unknown keys at both levels (future fields, artifact extras).
    for _ in range(gen.randint(1, 4)):
        data[f"unknown_{gen.randint(0, 999)}"] = gen.random()
    for record in data["records"]:
        record[f"extra_{gen.randint(0, 999)}"] = [gen.random()]

    restored = History.from_json(json.dumps(data))
    assert restored.algorithm == history.algorithm
    assert restored.final_accuracy == history.final_accuracy
    assert restored.records == history.records  # dataclass equality, exact


# -- ledger order-independence (upload-accounting regression) ---------------------


def _updates(gen: random.Random, count: int) -> list[ClientUpdate]:
    return [
        ClientUpdate(
            client_id=cid,
            params=np.zeros(3),
            wire=gen.randint(1, 5000),
            task_loss=0.0,
            reg_loss=0.0,
            num_steps=1,
        )
        for cid in range(count)
    ]


@pytest.mark.parametrize("case", CASES)
def test_upload_charges_are_independent_of_completion_order(case):
    """Workers finish in arbitrary order; per-round ledger totals (and
    therefore History bytes) must not depend on it."""
    gen = random.Random(5000 + case)
    count = gen.randint(2, 8)
    updates = _updates(gen, count)
    selected = np.arange(count)

    def charge(update_order: list[ClientUpdate]) -> dict:
        algorithm = FedAvg()
        algorithm.ledger = CommLedger(4)
        algorithm._charge_uploads(selected, update_order)
        algorithm.ledger.end_round()
        return algorithm.ledger.round_bytes(0)

    in_order = charge(updates)
    shuffled = updates[:]
    gen.shuffle(shuffled)
    assert charge(shuffled) == in_order
    assert charge(list(reversed(updates))) == in_order
