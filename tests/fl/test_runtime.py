"""Per-client runtime models (repro.fl.runtime)."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.fl.runtime import (
    GaussianRuntime,
    InstantRuntime,
    TraceRuntime,
    make_runtime,
)


def test_instant_runtime_is_zero():
    runtime = InstantRuntime()
    assert runtime.duration(0, 0) == 0.0
    assert runtime.duration(7, 3) == 0.0


def test_gaussian_durations_deterministic_and_positive():
    runtime = GaussianRuntime(num_clients=8, mean=2.0, std=0.3, seed=5)
    table = [[runtime.duration(r, k) for k in range(8)] for r in range(4)]
    again = GaussianRuntime(num_clients=8, mean=2.0, std=0.3, seed=5)
    assert table == [[again.duration(r, k) for k in range(8)] for r in range(4)]
    assert all(t > 0 for row in table for t in row)


def test_gaussian_heterogeneity_spreads_base_times():
    flat = GaussianRuntime(num_clients=50, heterogeneity=0.0, seed=1)
    skew = GaussianRuntime(num_clients=50, heterogeneity=2.0, seed=1)
    assert np.allclose(flat.base_times, flat.mean)
    assert skew.base_times.std() > flat.base_times.std()


def test_gaussian_seed_changes_durations():
    a = GaussianRuntime(num_clients=4, std=0.5, seed=1)
    b = GaussianRuntime(num_clients=4, std=0.5, seed=2)
    assert a.duration(0, 0) != b.duration(0, 0)


def test_gaussian_rejects_bad_params():
    with pytest.raises(ConfigError):
        GaussianRuntime(num_clients=0)
    with pytest.raises(ConfigError):
        GaussianRuntime(num_clients=2, mean=0.0)
    with pytest.raises(ConfigError):
        GaussianRuntime(num_clients=2, std=-1.0)


def test_trace_runtime_constant_and_cycling():
    constant = TraceRuntime([1.0, 2.0, 3.0])
    assert constant.duration(0, 1) == 2.0
    assert constant.duration(9, 1) == 2.0  # (N,) tables repeat every round
    cycling = TraceRuntime([[1.0, 5.0], [2.0, 6.0]])
    assert cycling.duration(0, 0) == 1.0
    assert cycling.duration(1, 0) == 5.0
    assert cycling.duration(2, 0) == 1.0  # cycles with period T


def test_trace_runtime_rejects_nonpositive():
    with pytest.raises(ConfigError):
        TraceRuntime([1.0, 0.0])


def test_trace_runtime_from_json(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"times": [1.5, 2.5]}))
    runtime = TraceRuntime.from_json(str(path))
    assert runtime.duration(0, 1) == 2.5
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([3.0, 4.0]))
    assert TraceRuntime.from_json(str(bare)).duration(0, 0) == 3.0


def test_make_runtime_specs(tmp_path):
    assert isinstance(make_runtime("instant", 4), InstantRuntime)
    gauss = make_runtime("gaussian:mean=2,std=0.2,het=1.5", 4, seed=3)
    assert isinstance(gauss, GaussianRuntime)
    assert gauss.mean == 2.0 and gauss.heterogeneity == 1.5
    path = tmp_path / "t.json"
    path.write_text("[1.0, 2.0]")
    assert isinstance(make_runtime(f"trace:{path}", 2), TraceRuntime)


def test_make_runtime_passes_instances_through():
    runtime = InstantRuntime()
    assert make_runtime(runtime, 4) is runtime


def test_make_runtime_rejects_unknown_kind():
    with pytest.raises(ConfigError, match="did you mean"):
        make_runtime("gausian", 4)


def test_make_runtime_rejects_bad_gaussian_key():
    with pytest.raises(ConfigError, match="key=value"):
        make_runtime("gaussian:speed=2", 4)


def test_make_runtime_instant_takes_no_params():
    with pytest.raises(ConfigError):
        make_runtime("instant:fast=1", 4)


def test_make_runtime_trace_needs_path():
    with pytest.raises(ConfigError, match="trace:<path"):
        make_runtime("trace", 4)
