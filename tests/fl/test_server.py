"""Aggregation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.fl.server import weighted_average


def test_equal_weights_is_mean():
    vectors = [np.array([1.0, 0.0]), np.array([3.0, 2.0])]
    np.testing.assert_allclose(weighted_average(vectors, np.array([1, 1])), [2.0, 1.0])


def test_weights_normalize():
    vectors = [np.zeros(2), np.ones(2)]
    out = weighted_average(vectors, np.array([1.0, 3.0]))
    np.testing.assert_allclose(out, [0.75, 0.75])
    out2 = weighted_average(vectors, np.array([100.0, 300.0]))
    np.testing.assert_allclose(out, out2)


@given(
    st.integers(1, 8),
    st.integers(1, 6),
    st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_average_within_convex_hull(num_vectors, dim, seed):
    """Property: the weighted average is inside the coordinate-wise hull."""
    gen = np.random.default_rng(seed)
    vectors = [gen.normal(size=dim) for _ in range(num_vectors)]
    weights = gen.uniform(0.1, 2.0, size=num_vectors)
    out = weighted_average(vectors, weights)
    stacked = np.stack(vectors)
    assert np.all(out >= stacked.min(axis=0) - 1e-12)
    assert np.all(out <= stacked.max(axis=0) + 1e-12)


def test_single_vector_identity(rng):
    v = rng.normal(size=5)
    np.testing.assert_allclose(weighted_average([v], np.array([7.0])), v)


def test_errors():
    with pytest.raises(ProtocolError):
        weighted_average([], np.array([]))
    with pytest.raises(ProtocolError):
        weighted_average([np.zeros(2)], np.array([1.0, 2.0]))
    with pytest.raises(ProtocolError):
        weighted_average([np.zeros(2), np.zeros(3)], np.array([1.0, 1.0]))
    with pytest.raises(ProtocolError):
        weighted_average([np.zeros(2)], np.array([-1.0]))
    with pytest.raises(ProtocolError):
        weighted_average([np.zeros(2)], np.array([0.0]))
