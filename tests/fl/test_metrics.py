"""History / RoundRecord tests."""

import numpy as np
import pytest

from repro.fl.metrics import History, RoundRecord


def _history_with_accs(accs, every=1):
    hist = History(algorithm="x")
    for i, acc in enumerate(accs):
        rec = RoundRecord(round_idx=i, train_loss=1.0 / (i + 1))
        if i % every == 0:
            rec.test_accuracy = acc
            rec.test_loss = 1.0 - acc
        hist.append(rec)
    return hist


def test_series_accessors():
    hist = _history_with_accs([0.1, 0.5, 0.9])
    np.testing.assert_array_equal(hist.rounds(), [0, 1, 2])
    np.testing.assert_allclose(hist.train_losses(), [1.0, 0.5, 1 / 3])
    acc = hist.accuracies()
    np.testing.assert_allclose(acc[:, 1], [0.1, 0.5, 0.9])
    tl = hist.test_losses()
    np.testing.assert_allclose(tl[:, 1], [0.9, 0.5, 0.1])


def test_sparse_eval_rounds_skipped():
    hist = _history_with_accs([0.1, 0.2, 0.3, 0.4], every=2)
    acc = hist.accuracies()
    np.testing.assert_array_equal(acc[:, 0], [0, 2])


def test_best_last_tail_accuracy():
    hist = _history_with_accs([0.2, 0.9, 0.5, 0.6])
    assert hist.best_accuracy() == pytest.approx(0.9)
    assert hist.last_accuracy() == pytest.approx(0.6)
    assert hist.tail_mean_accuracy(2) == pytest.approx(0.55)


def test_empty_history_statistics_are_nan():
    hist = History(algorithm="x")
    assert np.isnan(hist.best_accuracy())
    assert np.isnan(hist.last_accuracy())
    assert hist.accuracies().shape == (0, 2)
    assert hist.mean_round_time() == 0.0


def test_rounds_to_reach():
    hist = _history_with_accs([0.1, 0.4, 0.7, 0.8])
    assert hist.rounds_to_reach(0.5) == 2
    assert hist.rounds_to_reach(0.05) == 0
    assert hist.rounds_to_reach(0.95) is None


def test_total_bytes():
    hist = History(algorithm="x")
    hist.append(RoundRecord(0, 1.0, bytes_down=10, bytes_up=5))
    hist.append(RoundRecord(1, 1.0, bytes_down=10, bytes_up=5))
    assert hist.total_bytes() == 30


def test_wall_times():
    hist = History(algorithm="x")
    hist.append(RoundRecord(0, 1.0, wall_time_sec=0.5))
    hist.append(RoundRecord(1, 1.0, wall_time_sec=1.5))
    assert hist.mean_round_time() == pytest.approx(1.0)


def test_json_roundtrip(tmp_path):
    hist = _history_with_accs([0.2, 0.5, 0.8])
    hist.final_accuracy = 0.8
    path = str(tmp_path / "history.json")
    hist.save_json(path)
    loaded = History.load_json(path)
    assert loaded.algorithm == hist.algorithm
    assert loaded.final_accuracy == 0.8
    np.testing.assert_allclose(loaded.train_losses(), hist.train_losses())
    np.testing.assert_allclose(loaded.accuracies(), hist.accuracies())


def test_json_roundtrip_with_per_client(tmp_path):
    hist = _history_with_accs([0.5])
    hist.per_client_accuracy = np.array([0.4, 0.6])
    path = str(tmp_path / "history.json")
    hist.save_json(path)
    loaded = History.load_json(path)
    np.testing.assert_array_equal(loaded.per_client_accuracy, [0.4, 0.6])


def test_round_record_dict_roundtrip():
    rec = RoundRecord(round_idx=2, train_loss=0.5, reg_loss=0.1,
                      wall_time_sec=0.25, bytes_down=40, bytes_up=20,
                      num_selected=4, test_accuracy=0.7, test_loss=0.6)
    assert RoundRecord.from_dict(rec.to_dict()) == rec


def test_round_record_json_roundtrip_is_exact():
    rec = RoundRecord(round_idx=0, train_loss=1 / 3, test_accuracy=0.125)
    assert RoundRecord.from_json(rec.to_json()) == rec


def test_round_record_from_dict_ignores_unknown_keys():
    rec = RoundRecord(round_idx=1, train_loss=0.5)
    data = rec.to_dict()
    data["someday_field"] = "whatever"
    assert RoundRecord.from_dict(data) == rec


def test_history_json_string_roundtrip_is_exact():
    hist = _history_with_accs([0.2, 0.5, 0.8])
    hist.final_accuracy = 0.8
    hist.per_client_accuracy = np.array([0.25, 0.75])
    reloaded = History.from_json(hist.to_json())
    assert reloaded.to_dict() == hist.to_dict()
    assert isinstance(reloaded.per_client_accuracy, np.ndarray)


def test_history_from_json_ignores_extra_sections():
    hist = _history_with_accs([0.4])
    data = hist.to_dict()
    data["trace"] = {"spans": {}, "metrics": {}}
    reloaded = History.from_dict(data)
    assert reloaded.to_dict() == hist.to_dict()


def test_history_to_dict_is_json_safe():
    import json

    hist = _history_with_accs([0.5])
    hist.per_client_accuracy = np.array([0.5, 0.5])
    json.dumps(hist.to_dict())  # numpy arrays must be converted to lists


def test_csv_export(tmp_path):
    hist = _history_with_accs([0.3, 0.6])
    path = str(tmp_path / "history.csv")
    hist.save_csv(path)
    with open(path) as handle:
        lines = handle.read().strip().splitlines()
    assert lines[0].startswith("round_idx,train_loss,test_accuracy")
    assert len(lines) == 3  # header + 2 rounds
    assert lines[1].startswith("0,")
