"""Streaming History/CommLedger equivalence (repro.fl.metrics / comm).

Satellite contract of the scale-out PR: streaming summaries must match
the appending implementations record-for-record on small runs — same
aggregates, same spool replay, same JSON round-trips, same checkpoint
restore in every mode combination.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fl.comm import CommLedger
from repro.fl.metrics import History, RoundRecord, StreamingHistory


def _record(i: int, with_eval: bool) -> RoundRecord:
    return RoundRecord(
        round_idx=i,
        train_loss=1.0 / (i + 1),
        reg_loss=0.01 * i,
        wall_time_sec=0.1,
        bytes_down=1000 + i,
        bytes_up=500 + i,
        num_selected=4,
        test_loss=0.5 / (i + 1) if with_eval else None,
        test_accuracy=0.5 + 0.04 * i if with_eval else None,
    )


def _fill(history, rounds=12, eval_every=3):
    for i in range(rounds):
        history.append(_record(i, with_eval=(i % eval_every == 0)))


# -- StreamingHistory vs History ----------------------------------------------------


def test_summary_statistics_match_appending():
    appending = History(algorithm="fedavg")
    streaming = StreamingHistory(algorithm="fedavg")
    _fill(appending)
    _fill(streaming)
    assert streaming.records == []  # never accumulates
    assert streaming.num_records == len(appending.records)
    assert streaming.best_accuracy() == appending.best_accuracy()
    assert streaming.last_accuracy() == appending.last_accuracy()
    assert streaming.total_bytes() == appending.total_bytes()
    assert streaming.mean_round_time() == pytest.approx(appending.mean_round_time())
    assert streaming.tail_mean_accuracy(3) == pytest.approx(
        appending.tail_mean_accuracy(3)
    )


def test_spooled_series_match_record_for_record(tmp_path):
    spool = str(tmp_path / "history.jsonl")
    appending = History(algorithm="fedavg")
    streaming = StreamingHistory(algorithm="fedavg", stream_path=spool)
    _fill(appending)
    _fill(streaming)
    np.testing.assert_array_equal(streaming.rounds(), appending.rounds())
    np.testing.assert_array_equal(streaming.train_losses(), appending.train_losses())
    np.testing.assert_array_equal(streaming.accuracies(), appending.accuracies())
    np.testing.assert_array_equal(streaming.test_losses(), appending.test_losses())
    assert streaming.rounds_to_reach(0.6) == appending.rounds_to_reach(0.6)
    # Every spooled line JSON-round-trips to the appended record.
    with open(spool) as handle:
        spooled = [RoundRecord.from_json(line) for line in handle]
    assert spooled == appending.records


def test_spooled_to_dict_matches_appending_to_dict(tmp_path):
    spool = str(tmp_path / "history.jsonl")
    appending = History(algorithm="rfedavg+")
    streaming = StreamingHistory(algorithm="rfedavg+", stream_path=spool)
    _fill(appending)
    _fill(streaming)
    appending.final_accuracy = appending.last_accuracy()
    streaming.final_accuracy = streaming.last_accuracy()
    assert streaming.to_dict() == appending.to_dict()
    # ... and that dict survives a JSON round-trip.
    assert json.loads(json.dumps(streaming.to_dict())) == appending.to_dict()


def test_series_without_spool_raise_clearly():
    streaming = StreamingHistory(algorithm="fedavg")
    _fill(streaming)
    with pytest.raises(RuntimeError, match="spool"):
        streaming.accuracies()
    with pytest.raises(RuntimeError, match="spool"):
        streaming.save_csv("/dev/null")


def test_tail_bound_guard():
    streaming = StreamingHistory(algorithm="fedavg", tail=4)
    _fill(streaming, rounds=20, eval_every=1)
    assert np.isfinite(streaming.tail_mean_accuracy(4))
    with pytest.raises(ValueError, match="tail"):
        streaming.tail_mean_accuracy(10)


def test_summary_checkpoint_round_trip():
    a = StreamingHistory(algorithm="fedavg")
    _fill(a)
    b = StreamingHistory(algorithm="fedavg")
    b.restore_summary(json.loads(json.dumps(a.summary_dict())))
    assert b.summary_dict() == a.summary_dict()
    assert b.best_accuracy() == a.best_accuracy()
    assert b.last_record == a.last_record


def test_fold_records_equals_incremental_append():
    incremental = StreamingHistory(algorithm="fedavg")
    _fill(incremental)
    folded = StreamingHistory(algorithm="fedavg")
    reference = History(algorithm="fedavg")
    _fill(reference)
    folded.fold_records(reference.records)
    assert folded.summary_dict() == incremental.summary_dict()


def test_truncate_spool_drops_post_checkpoint_rounds(tmp_path):
    spool = str(tmp_path / "history.jsonl")
    streaming = StreamingHistory(algorithm="fedavg", stream_path=spool)
    _fill(streaming, rounds=10)
    streaming.truncate_spool(6)
    rounds = streaming.rounds()
    assert rounds.max() == 6 and len(rounds) == 7


def test_checkpoint_dict_is_summary_only():
    streaming = StreamingHistory(algorithm="fedavg")
    _fill(streaming, rounds=50)
    ckpt = streaming.checkpoint_dict()
    assert ckpt["mode"] == "stream"
    assert "records" not in ckpt
    restored = StreamingHistory(algorithm="fedavg")
    restored.restore_summary(ckpt["summary"])
    assert restored.num_records == 50


# -- streaming CommLedger -----------------------------------------------------------


def _charge_rounds(ledger: CommLedger, rounds=6) -> list[dict]:
    totals = []
    for i in range(rounds):
        ledger.charge("down", "model", 100 + i)
        ledger.charge("up", "delta", 40 + i)
        if i % 2 == 0:
            ledger.charge("up", "control", 7)
        totals.append(ledger.end_round())
    return totals


def test_ledger_totals_match_appending():
    appending = CommLedger(4)
    streaming = CommLedger(4, streaming=True)
    totals_a = _charge_rounds(appending)
    totals_s = _charge_rounds(streaming)
    assert totals_a == totals_s  # end_round returns identical dicts
    assert streaming.rounds == appending.rounds
    for key in (None, "down", "up", "up:control"):
        assert streaming.total(key) == appending.total(key)


def test_ledger_spool_replays_per_round_series(tmp_path):
    spool = str(tmp_path / "comm.jsonl")
    appending = CommLedger(4)
    streaming = CommLedger(4, streaming=True, stream_path=spool)
    _charge_rounds(appending)
    _charge_rounds(streaming)
    for key in ("down", "up", "up:control", "down:model"):
        np.testing.assert_array_equal(
            streaming.per_round_series(key), appending.per_round_series(key)
        )
    for i in range(appending.rounds):
        assert streaming.round_bytes(i) == appending.round_bytes(i)


def test_ledger_series_without_spool_raises():
    streaming = CommLedger(4, streaming=True)
    _charge_rounds(streaming)
    with pytest.raises(RuntimeError, match="spool"):
        streaming.per_round_series("down")


def test_ledger_stream_path_requires_streaming(tmp_path):
    with pytest.raises(ValueError, match="streaming"):
        CommLedger(4, stream_path=str(tmp_path / "comm.jsonl"))


def test_ledger_state_dict_cross_mode_matrix(tmp_path):
    appending = CommLedger(4)
    streaming = CommLedger(4, streaming=True)
    _charge_rounds(appending)
    _charge_rounds(streaming)

    # stream checkpoint -> stream ledger: totals adopted.
    restored = CommLedger(4, streaming=True)
    restored.load_state_dict(streaming.state_dict())
    assert restored.rounds == streaming.rounds
    assert restored.total() == streaming.total()

    # append checkpoint -> stream ledger: rounds folded.
    folded = CommLedger(4, streaming=True)
    folded.load_state_dict(appending.state_dict())
    assert folded.rounds == appending.rounds
    assert folded.total("down") == appending.total("down")

    # stream checkpoint -> append ledger: refused (data is gone).
    with pytest.raises(ValueError, match="stream"):
        CommLedger(4).load_state_dict(streaming.state_dict())

    # append -> append: the historical path still works.
    historical = CommLedger(4)
    historical.load_state_dict(appending.state_dict())
    assert historical.round_bytes(2) == appending.round_bytes(2)


def test_ledger_restore_truncates_stale_spool(tmp_path):
    spool = str(tmp_path / "comm.jsonl")
    streaming = CommLedger(4, streaming=True, stream_path=spool)
    _charge_rounds(streaming, rounds=4)
    state = streaming.state_dict()  # checkpoint cut at round 4
    _charge_rounds(streaming, rounds=3)  # crash: spool runs ahead
    resumed = CommLedger(4, streaming=True, stream_path=spool)
    resumed.load_state_dict(state)
    assert resumed.rounds == 4
    assert len(resumed.per_round_series("down")) == 4
