"""Secure aggregation tests."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.fl.secure import SecureAggregator, secure_weighted_average
from repro.fl.server import weighted_average


def test_masks_cancel_exactly(rng):
    participants = [0, 1, 2, 3]
    updates = [rng.normal(size=10) for _ in participants]
    agg = SecureAggregator(round_seed=7)
    masked = [agg.mask_update(cid, participants, u) for cid, u in zip(participants, updates)]
    total = agg.aggregate(masked)
    np.testing.assert_allclose(total, np.sum(updates, axis=0), atol=1e-9)


def test_individual_uploads_look_random(rng):
    participants = [0, 1, 2]
    update = np.zeros(50)  # nothing to hide, yet the upload is noise
    agg = SecureAggregator(round_seed=3, mask_scale=100.0)
    masked = agg.mask_update(0, participants, update)
    assert np.linalg.norm(masked) > 100.0  # drowned in mask noise


def test_pair_masks_are_symmetric_secrets():
    agg = SecureAggregator(round_seed=5)
    a = agg._pair_mask(1, 4, 8)
    b = agg._pair_mask(1, 4, 8)
    np.testing.assert_array_equal(a, b)  # both parties derive the same mask
    with pytest.raises(ProtocolError):
        agg._pair_mask(4, 1, 8)


def test_different_rounds_different_masks():
    a = SecureAggregator(round_seed=1)._pair_mask(0, 1, 8)
    b = SecureAggregator(round_seed=2)._pair_mask(0, 1, 8)
    assert not np.array_equal(a, b)


def test_nonparticipant_rejected(rng):
    agg = SecureAggregator(round_seed=0)
    with pytest.raises(ProtocolError):
        agg.mask_update(9, [0, 1], rng.normal(size=4))


def test_empty_aggregate_rejected():
    with pytest.raises(ProtocolError):
        SecureAggregator(0).aggregate([])


def test_secure_weighted_average_matches_plain(rng):
    participants = [2, 5, 7]
    updates = [rng.normal(size=20) for _ in participants]
    weights = np.array([10.0, 30.0, 60.0])
    secure = secure_weighted_average(updates, weights, participants, round_seed=11)
    plain = weighted_average(updates, weights)
    np.testing.assert_allclose(secure, plain, atol=1e-9)


def test_secure_weighted_average_validation(rng):
    with pytest.raises(ProtocolError):
        secure_weighted_average([np.zeros(2)], np.array([1.0, 2.0]), [0], 0)
    with pytest.raises(ProtocolError):
        secure_weighted_average([np.zeros(2)], np.array([0.0]), [0], 0)


def test_single_participant_no_masking(rng):
    update = rng.normal(size=5)
    out = secure_weighted_average([update], np.array([3.0]), [4], round_seed=9)
    np.testing.assert_allclose(out, update)


def test_mask_scale_validation():
    with pytest.raises(ProtocolError):
        SecureAggregator(0, mask_scale=0.0)
