"""Client sampling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.fl.sampling import sample_clients


def test_full_participation_returns_everyone(rng):
    np.testing.assert_array_equal(sample_clients(7, 1.0, rng), np.arange(7))


@given(st.integers(2, 200), st.floats(0.01, 0.99), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_partial_sampling_properties(n, sr, seed):
    rng = np.random.default_rng(seed)
    selected = sample_clients(n, sr, rng)
    assert len(selected) == max(1, int(round(sr * n)))
    assert len(np.unique(selected)) == len(selected)  # no replacement
    assert selected.min() >= 0 and selected.max() < n
    assert np.all(np.diff(selected) > 0)  # sorted


def test_at_least_one_client(rng):
    assert len(sample_clients(100, 0.001, rng)) == 1


def test_sampling_is_uniform_over_time():
    rng = np.random.default_rng(0)
    counts = np.zeros(10)
    for _ in range(2000):
        counts[sample_clients(10, 0.2, rng)] += 1
    freq = counts / counts.sum()
    assert np.all(np.abs(freq - 0.1) < 0.02)


def test_invalid_inputs(rng):
    with pytest.raises(ConfigError):
        sample_clients(10, 0.0, rng)
    with pytest.raises(ConfigError):
        sample_clients(10, 1.5, rng)
    with pytest.raises(ConfigError):
        sample_clients(0, 0.5, rng)
