"""Report formatting tests."""

import numpy as np

from repro.experiments.report import (
    display_name,
    format_accuracy_table,
    format_comm_table,
    format_curve,
    format_rounds_table,
    summarize_fairness,
)
from repro.experiments.runner import RunResult
from repro.fl.metrics import History, RoundRecord


def _result(name, accs):
    result = RunResult(algorithm=name)
    hist = History(algorithm=name)
    for i, acc in enumerate(accs):
        hist.append(
            RoundRecord(round_idx=i, train_loss=1.0 - acc, test_accuracy=acc)
        )
    result.histories.append(hist)
    return result


def test_display_names_match_paper():
    assert display_name("rfedavg+") == "rFedAvg+"
    assert display_name("qfedavg") == "q-FedAvg"
    assert display_name("unknown") == "unknown"


def test_accuracy_table_contains_all_methods_and_settings():
    columns = {
        "Sim 0%": {"fedavg": _result("fedavg", [0.5]), "rfedavg+": _result("rfedavg+", [0.6])},
        "Sim 100%": {"fedavg": _result("fedavg", [0.9])},
    }
    table = format_accuracy_table(columns, title="Table I")
    assert "Table I" in table
    assert "FedAvg" in table and "rFedAvg+" in table
    assert "Sim 0%" in table and "Sim 100%" in table
    assert "-" in table  # missing cell placeholder
    assert "60.00" in table  # 0.6 as percent


def test_format_curve_lists_rounds():
    text = format_curve(_result("fedavg", [0.1, 0.2]))
    assert "round    0" in text
    assert "0.2000" in text


def test_format_curve_loss_mode():
    text = format_curve(_result("fedavg", [0.1, 0.2]), metric="loss")
    assert "loss" in text


def test_rounds_table():
    results = {
        "fedavg": _result("fedavg", [0.1, 0.6, 0.9]),
        "rfedavg+": _result("rfedavg+", [0.7, 0.8, 0.9]),
    }
    table = format_rounds_table(results, [0.5, 0.95], title="Fig. 10")
    assert "Fig. 10" in table
    assert ">max" in table  # fedavg never reaches... actually 0.9<0.95 both
    assert "acc>=0.50" in table


def test_comm_table():
    rows = {"rfedavg": {"CNN": 56160}, "rfedavg+": {"CNN": 2808}}
    table = format_comm_table(rows, title="Table III")
    assert "56,160" in table
    assert "2,808" in table


def test_summarize_fairness():
    acc = np.array([0.1, 0.5, 0.9, 1.0])
    summary = summarize_fairness(acc, worst_k=2)
    assert summary["worst"] == 0.1
    assert summary["worst2_mean"] == 0.3
    assert summary["best"] == 1.0
