"""Matched-seed comparison harness tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.experiments.robustness import compare_with_significance
from repro.fl.config import FLConfig
from repro.models import build_mlp
from tests.conftest import make_toy_federation


def _fed_builder(seed):
    return make_toy_federation(similarity=0.5)


def _model_fn_builder(fed, seed):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _config():
    return FLConfig(rounds=4, local_steps=2, batch_size=8, lr=0.2, eval_every=2, seed=0)


def test_identical_methods_not_significant():
    """A method against itself: zero difference, never significant."""
    result = compare_with_significance(
        "fedavg", "fedavg", _fed_builder, _model_fn_builder, _config(), repeats=3
    )
    assert result.stats.difference == pytest.approx(0.0)
    assert not result.stats.significant
    np.testing.assert_array_equal(result.accs_a, result.accs_b)


def test_lambda_zero_equivalence_detected():
    """rFedAvg+ at lambda=0 is trajectory-identical to FedAvg — the
    harness must report exactly zero gap across all seeds."""
    result = compare_with_significance(
        "rfedavg+", "fedavg", _fed_builder, _model_fn_builder, _config(),
        repeats=2, kwargs_a={"lam": 0.0},
    )
    assert result.stats.difference == pytest.approx(0.0)


def test_summary_format():
    result = compare_with_significance(
        "fedavg", "fedprox", _fed_builder, _model_fn_builder, _config(),
        repeats=2, kwargs_b={"mu": 0.5},
    )
    text = result.summary()
    assert "fedavg" in text and "fedprox" in text
    assert "difference" in text
    assert "CI" in text


def test_needs_two_repeats():
    with pytest.raises(ConfigError):
        compare_with_significance(
            "fedavg", "fedavg", _fed_builder, _model_fn_builder, _config(), repeats=1
        )


def test_broken_method_is_flagged_significant():
    """FedProx with an absurd mu (unstable) vs FedAvg: the gap should be
    large; with matched seeds the paired test usually flags it.  We only
    assert the direction to keep the test robust."""
    result = compare_with_significance(
        "fedavg", "fedprox", _fed_builder, _model_fn_builder,
        _config().with_updates(rounds=6), repeats=3, kwargs_b={"mu": 40.0},
    )
    assert result.stats.mean_a >= result.stats.mean_b
