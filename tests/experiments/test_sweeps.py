"""Sweep utility tests."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.experiments.sweeps import (
    SweepResult,
    sweep_algorithm_param,
    sweep_config_field,
    sweep_federation,
)
from repro.fl.config import FLConfig
from repro.models import build_mlp
from tests.conftest import make_toy_federation


def _fed_builder(seed):
    return make_toy_federation(similarity=0.0)


def _fed_builder_factory(num_clients=4):
    def factory(seed):
        return make_toy_federation(similarity=0.0, num_clients=num_clients)

    return factory


def _model_fn_builder(fed, seed):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _config():
    return FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.2, seed=0)


def test_sweep_result_best_and_table():
    result = SweepResult(knob="lam", values=[0.1, 0.2], accuracies=[0.5, 0.7])
    assert result.best() == (0.2, 0.7)
    table = result.as_table()
    assert "lam" in table and "0.7000" in table


def test_sweep_result_empty_best():
    with pytest.raises(ConfigError):
        SweepResult(knob="x").best()


def test_sweep_algorithm_param_runs_each_value():
    result = sweep_algorithm_param(
        "rfedavg+", "lam", [0.0, 1e-3], _fed_builder, _model_fn_builder, _config()
    )
    assert result.values == [0.0, 1e-3]
    assert len(result.accuracies) == 2
    assert all(0.0 <= a <= 1.0 for a in result.accuracies)


def test_sweep_config_field():
    result = sweep_config_field(
        "fedavg", "local_steps", [1, 3], _fed_builder, _model_fn_builder, _config()
    )
    assert result.values == [1, 3]
    assert len(result.accuracies) == 2


def test_sweep_federation_property():
    result = sweep_federation(
        "fedavg", "num_clients", [2, 4], _fed_builder_factory, _model_fn_builder, _config()
    )
    assert result.values == [2, 4]
    assert len(result.accuracies) == 2


def test_sweeps_are_deterministic():
    a = sweep_config_field(
        "fedavg", "batch_size", [8], _fed_builder, _model_fn_builder, _config()
    )
    b = sweep_config_field(
        "fedavg", "batch_size", [8], _fed_builder, _model_fn_builder, _config()
    )
    assert a.accuracies == b.accuracies


def test_checkpointed_sweep_isolates_cells_and_resumes(tmp_path):
    """Each swept value checkpoints into its own subdirectory, and an
    interrupted sweep re-runs only its unfinished cells."""
    config = _config().with_updates(checkpoint_dir=str(tmp_path))
    first = sweep_config_field(
        "fedavg", "local_steps", [1, 2], _fed_builder, _model_fn_builder, config
    )
    for value in (1, 2):
        marker = tmp_path / f"local_steps-{value}" / "fedavg-rep0" / "result.json"
        assert marker.is_file()

    # Drop one cell's marker: only that value should retrain on resume.
    (tmp_path / "local_steps-2" / "fedavg-rep0" / "result.json").unlink()
    resumed = sweep_config_field(
        "fedavg", "local_steps", [1, 2], _fed_builder, _model_fn_builder,
        config.with_updates(resume=True),
    )
    assert resumed.values == first.values
    assert resumed.accuracies == first.accuracies
