"""Runner and RunResult tests."""

import numpy as np
import pytest

from repro.experiments.runner import RunResult, compare_algorithms, run_grid
from repro.fl.config import FLConfig
from repro.fl.metrics import History, RoundRecord
from repro.models import build_mlp
from tests.conftest import make_toy_federation


def _fed_builder(seed):
    return make_toy_federation(similarity=0.0)


def _model_fn_builder(fed, seed):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _config():
    return FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=0)


def test_run_grid_repeats(rng):
    result = run_grid(
        "fedavg", _fed_builder, _model_fn_builder, _config(), repeats=2
    )
    assert result.algorithm == "fedavg"
    assert len(result.histories) == 2


def test_repeats_vary_seed(rng):
    result = run_grid(
        "fedavg", _fed_builder, _model_fn_builder, _config(), repeats=2
    )
    a, b = result.histories
    assert not np.array_equal(a.train_losses(), b.train_losses())


def test_algorithm_kwargs_forwarded():
    result = run_grid(
        "fedprox", _fed_builder, _model_fn_builder, _config(), repeats=1, mu=0.5
    )
    assert len(result.histories) == 1


def test_compare_algorithms_runs_each():
    results = compare_algorithms(
        {"fedavg": {}, "rfedavg+": {"lam": 1e-3}},
        _fed_builder,
        _model_fn_builder,
        _config(),
    )
    assert set(results) == {"fedavg", "rfedavg+"}
    assert all(len(r.histories) == 1 for r in results.values())


def _result_with_accs(curves):
    result = RunResult(algorithm="x")
    for accs in curves:
        hist = History(algorithm="x")
        for i, acc in enumerate(accs):
            rec = RoundRecord(round_idx=i, train_loss=1.0, test_accuracy=acc, wall_time_sec=0.1)
            hist.append(rec)
        result.histories.append(hist)
    return result


def test_accuracy_mean_std():
    result = _result_with_accs([[0.5, 0.6], [0.7, 0.8]])
    mean, std = result.accuracy_mean_std(tail=1)
    assert mean == pytest.approx(0.7)
    assert std == pytest.approx(0.1)


def test_mean_accuracy_curve():
    result = _result_with_accs([[0.2, 0.4], [0.4, 0.6]])
    curve = result.mean_accuracy_curve()
    np.testing.assert_allclose(curve[:, 1], [0.3, 0.5])
    np.testing.assert_array_equal(curve[:, 0], [0, 1])


def test_rounds_to_reach_median():
    result = _result_with_accs([[0.1, 0.6, 0.9], [0.1, 0.2, 0.6]])
    # Median of [1, 2] is 1.5, truncated to an integer round index.
    assert result.rounds_to_reach(0.5) == 1
    assert result.rounds_to_reach(0.99) is None


# -- checkpointed grids -----------------------------------------------------------


def test_checkpointed_repeats_get_isolated_cell_directories(tmp_path):
    config = _config().with_updates(checkpoint_dir=str(tmp_path))
    run_grid("fedavg", _fed_builder, _model_fn_builder, config, repeats=2)
    for rep in range(2):
        cell = tmp_path / f"fedavg-rep{rep}"
        assert (cell / "result.json").is_file()
        assert list(cell.glob("ckpt-*.rck"))


def test_grid_resume_skips_finished_cells(tmp_path, monkeypatch):
    import repro.experiments.runner as runner_mod

    config = _config().with_updates(checkpoint_dir=str(tmp_path))
    first = run_grid("fedavg", _fed_builder, _model_fn_builder, config, repeats=2)

    calls = []
    real_run = runner_mod.run_federated

    def counting_run(*args, **kwargs):
        calls.append(args)
        return real_run(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "run_federated", counting_run)
    again = run_grid(
        "fedavg", _fed_builder, _model_fn_builder,
        config.with_updates(resume=True), repeats=2,
    )
    assert calls == []  # every cell came from its result.json marker
    for h_first, h_again in zip(first.histories, again.histories):
        np.testing.assert_array_equal(h_first.train_losses(), h_again.train_losses())


def test_grid_resume_reruns_only_unfinished_cells(tmp_path, monkeypatch):
    import repro.experiments.runner as runner_mod

    baseline = run_grid(
        "fedavg", _fed_builder, _model_fn_builder, _config(), repeats=2
    )
    config = _config().with_updates(checkpoint_dir=str(tmp_path), checkpoint_keep=50)
    run_grid("fedavg", _fed_builder, _model_fn_builder, config, repeats=2)

    # Simulate a crash midway through repeat 1: its marker and newest
    # checkpoints are gone, only rounds 0..1 survive.
    crashed = tmp_path / "fedavg-rep1"
    (crashed / "result.json").unlink()
    (crashed / "ckpt-00000002.rck").unlink()

    calls = []
    real_run = runner_mod.run_federated

    def counting_run(*args, **kwargs):
        calls.append(args)
        return real_run(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "run_federated", counting_run)
    resumed = run_grid(
        "fedavg", _fed_builder, _model_fn_builder,
        config.with_updates(resume=True), repeats=2,
    )
    assert len(calls) == 1  # only the crashed cell re-entered the trainer
    for h_base, h_res in zip(baseline.histories, resumed.histories):
        np.testing.assert_array_equal(h_base.train_losses(), h_res.train_losses())
        np.testing.assert_array_equal(
            [r.test_accuracy for r in h_base.records],
            [r.test_accuracy for r in h_res.records],
        )
    assert (crashed / "result.json").is_file()  # marker rewritten on completion


def test_run_experiment_alias_warns_and_delegates(rng):
    # Old name kept as a deprecation shim for the run_grid rename.
    import pytest
    from repro.experiments import runner

    config = FLConfig(rounds=1, local_steps=1, batch_size=8, seed=0)
    with pytest.warns(DeprecationWarning, match="run_grid"):
        result = runner.run_experiment(
            "fedavg", _fed_builder, _model_fn_builder, config
        )
    assert isinstance(result, RunResult)
