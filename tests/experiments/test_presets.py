"""Experiment preset tests."""

import numpy as np
import pytest

from repro.data.stats import label_histograms, mean_pairwise_tv_distance
from repro.exceptions import ConfigError
from repro.experiments import (
    build_femnist_federation,
    build_image_federation,
    build_sent140_federation,
    cross_device_config,
    cross_silo_config,
    default_model_fn,
)


def test_cross_silo_defaults_match_paper():
    config = cross_silo_config()
    assert config.local_steps == 5
    assert config.sample_ratio == 1.0
    assert config.batch_size == 100


def test_cross_device_defaults_match_paper():
    config = cross_device_config()
    assert config.local_steps == 10
    assert config.sample_ratio == 0.2
    assert config.batch_size == 32


def test_config_overrides():
    config = cross_silo_config(rounds=7, lr=0.5)
    assert config.rounds == 7
    assert config.lr == 0.5


def test_image_federation_structure():
    fed = build_image_federation("synth_mnist", num_clients=5, similarity=0.0,
                                 num_train=200, num_test=50)
    assert fed.num_clients == 5
    assert fed.total_train_samples() == 200
    assert len(fed.test) == 50
    assert fed.spec.name == "synth_mnist"


def test_image_federation_similarity_controls_skew():
    non_iid = build_image_federation("synth_cifar", num_clients=8, similarity=0.0,
                                     num_train=800, num_test=50)
    iid = build_image_federation("synth_cifar", num_clients=8, similarity=1.0,
                                 num_train=800, num_test=50)
    tv_non = mean_pairwise_tv_distance(label_histograms(non_iid.clients, 10))
    tv_iid = mean_pairwise_tv_distance(label_histograms(iid.clients, 10))
    assert tv_non > tv_iid + 0.3


def test_image_federation_unknown_dataset():
    with pytest.raises(ConfigError):
        build_image_federation("imagenet")


def test_image_federation_deterministic():
    a = build_image_federation("synth_mnist", num_clients=3, num_train=100, num_test=20, seed=5)
    b = build_image_federation("synth_mnist", num_clients=3, num_train=100, num_test=20, seed=5)
    np.testing.assert_array_equal(a.clients[0].x, b.clients[0].x)


def test_sent140_federation_natural_vs_iid():
    natural = build_sent140_federation(num_users=10, iid=False, seed=1)
    iid = build_sent140_federation(num_users=10, iid=True, seed=1)
    assert natural.num_clients == 10
    assert iid.num_clients == 10
    # Natural partition has quantity skew; IID split is even.
    assert natural.client_sizes.std() > iid.client_sizes.std()
    assert natural.spec.kind == "sequence"


def test_femnist_federation():
    fed = build_femnist_federation(num_writers=10, samples_per_writer=12, seed=2)
    assert fed.num_clients == 10
    assert fed.spec.num_classes == 10


def test_default_model_fn_is_deterministic():
    fed = build_image_federation("synth_mnist", num_clients=3, num_train=100, num_test=20)
    factory = default_model_fn("mlp", fed.spec, seed=1)
    from repro.nn.serialization import get_flat_params

    np.testing.assert_array_equal(get_flat_params(factory()), get_flat_params(factory()))


@pytest.mark.parametrize("model_name", ["mlp", "cnn", "logistic"])
def test_default_model_fn_builds_each_image_model(model_name):
    fed = build_image_federation("synth_mnist", num_clients=3, num_train=60, num_test=20)
    model = default_model_fn(model_name, fed.spec)()
    out = model.forward(fed.test.x[:4])
    assert out.shape == (4, 10)


def test_default_model_fn_builds_lstm():
    fed = build_sent140_federation(num_users=4, seed=0)
    model = default_model_fn("lstm", fed.spec)()
    out = model.forward(fed.test.x[:3])
    assert out.shape == (3, 2)
