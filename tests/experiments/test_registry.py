"""Experiment registry tests."""

import os

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment


def test_every_paper_table_and_figure_is_registered():
    expected = {
        "fig1", "fig2_3", "fig4_5", "fig6_7", "fig8",
        "fig9a", "fig9b", "fig9c", "fig9d",
        "fig10ab", "fig10cd", "fig11", "fig12",
        "table1", "table2", "table3", "theory",
    }
    assert expected <= set(EXPERIMENTS)


def test_specs_have_bench_files():
    repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
    for spec in EXPERIMENTS.values():
        assert spec.bench, f"{spec.exp_id} has no bench target"
        path = os.path.normpath(os.path.join(repo_root, spec.bench))
        assert os.path.exists(path), f"{spec.exp_id}: missing {spec.bench}"


def test_specs_reference_real_modules():
    import importlib

    for spec in EXPERIMENTS.values():
        for module in spec.modules:
            importlib.import_module(module)


def test_get_experiment():
    assert get_experiment("table1").paper_ref == "Table I"
    with pytest.raises(KeyError):
        get_experiment("table99")
