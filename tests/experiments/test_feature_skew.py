"""Feature-skew federation tests."""

import numpy as np
import pytest

from repro.analysis.tsne import client_marginal_discrepancy
from repro.data.stats import label_histograms, mean_pairwise_tv_distance
from repro.data.transforms import client_style_pipeline
from repro.exceptions import DataError
from repro.experiments import build_feature_skew_federation


def test_structure():
    fed = build_feature_skew_federation(num_clients=5, num_train=250, num_test=50)
    assert fed.num_clients == 5
    assert fed.total_train_samples() == 250


def test_labels_are_iid_but_features_skewed():
    fed = build_feature_skew_federation(
        num_clients=6, skew_strength=1.5, num_train=1200, num_test=60
    )
    # Label distributions nearly identical (IID partition underneath)...
    hists = label_histograms(fed.clients, fed.spec.num_classes)
    assert mean_pairwise_tv_distance(hists) < 0.25
    # ...but raw-input marginals differ strongly across clients.
    flats = [c.x.reshape(len(c), -1) for c in fed.clients]
    skew = client_marginal_discrepancy(flats)
    fed0 = build_feature_skew_federation(
        num_clients=6, skew_strength=0.0, num_train=1200, num_test=60
    )
    flats0 = [c.x.reshape(len(c), -1) for c in fed0.clients]
    base = client_marginal_discrepancy(flats0)
    assert skew > 2 * base


def test_zero_strength_is_near_identity():
    fed = build_feature_skew_federation(
        num_clients=3, skew_strength=0.0, num_train=120, num_test=30, seed=4
    )
    from repro.experiments import build_image_federation

    plain = build_image_federation(
        "synth_mnist", num_clients=3, similarity=1.0,
        num_train=120, num_test=30, seed=4,
    )
    # Strength 0 applies brightness factor 1, shift 0, noise 0 — pixel
    # sets match up to partition shuffling.
    assert fed.total_train_samples() == plain.total_train_samples()
    np.testing.assert_allclose(
        sorted(fed.clients[0].x.sum(axis=(1, 2, 3)))[:5],
        sorted(fed.clients[0].x.sum(axis=(1, 2, 3)))[:5],
    )


def test_styles_are_deterministic_per_client():
    a = client_style_pipeline(3, strength=1.0, base_seed=7)
    b = client_style_pipeline(3, strength=1.0, base_seed=7)
    rng = np.random.default_rng(0)
    images = np.clip(np.random.default_rng(1).random((4, 1, 8, 8)), 0, 1)
    np.testing.assert_array_equal(
        a.apply(images, np.random.default_rng(2)),
        b.apply(images, np.random.default_rng(2)),
    )


def test_styles_differ_between_clients():
    images = np.clip(np.random.default_rng(1).random((4, 1, 8, 8)), 0, 1)
    out = [
        client_style_pipeline(cid, strength=1.5).apply(images, np.random.default_rng(2))
        for cid in range(3)
    ]
    assert not np.array_equal(out[0], out[1])
    assert not np.array_equal(out[1], out[2])


def test_negative_strength_rejected():
    with pytest.raises(DataError):
        client_style_pipeline(0, strength=-1.0)


def test_test_set_is_style_mixture():
    fed = build_feature_skew_federation(
        num_clients=4, skew_strength=2.0, num_train=200, num_test=80, seed=2
    )
    # The styled test set should differ from the raw generator output.
    from repro.data import make_synth_mnist

    _spec, _train, raw_test = make_synth_mnist(num_train=200, num_test=80, seed=2)
    assert not np.array_equal(fed.test.x, raw_test.x)
    np.testing.assert_array_equal(fed.test.y, raw_test.y)  # labels preserved
