"""Tests for the repro.run_experiment facade."""

import pytest

import repro
from repro.exceptions import ConfigError
from repro.experiments.facade import RUN_PRESETS, _resolve, list_presets
from repro.fl.metrics import History

TINY = {
    "rounds": 2, "local_steps": 1, "batch_size": 8, "eval_every": 1,
    "clients": 4, "num_train": 160, "num_test": 60, "scale": 0.25,
}


def test_presets_registered():
    names = [p.name for p in list_presets()]
    assert "quickstart" in names and "cifar-noniid" in names
    assert all(p.description for p in list_presets())


def test_unknown_preset_rejected():
    with pytest.raises(ConfigError, match="unknown experiment"):
        repro.run_experiment("nope")


def test_override_routing():
    preset, config_overrides, algorithm_kwargs = _resolve(
        "quickstart", {"rounds": 5, "clients": 3, "lam": 0.5}
    )
    assert preset.clients == 3  # preset field
    assert config_overrides == {"rounds": 5}  # FLConfig field
    assert algorithm_kwargs == {"lam": 0.5}  # algorithm kwarg wins over preset


def test_switching_algorithm_drops_preset_specific_kwargs():
    preset, _config, algorithm_kwargs = _resolve(
        "quickstart", {"algorithm": "fedavg"}
    )
    assert preset.algorithm == "fedavg"
    assert "lam" not in algorithm_kwargs  # rfedavg+'s lam must not leak
    _preset, _config, kwargs = _resolve(
        "quickstart", {"algorithm": "fedprox", "mu": 0.1}
    )
    assert kwargs == {"mu": 0.1}


def test_unknown_override_key_is_a_config_error():
    with pytest.raises(ConfigError, match="bogus_knob"):
        repro.run_experiment("quickstart", overrides={**TINY, "bogus_knob": 3})


def test_run_experiment_returns_history(tmp_path):
    history, artifacts = repro.run_experiment("quickstart", seed=1, overrides=TINY)
    assert isinstance(history, History)
    assert len(history.records) == 2
    assert artifacts is None  # nothing persisted by default


def test_run_experiment_same_seed_reproduces():
    hist_a, _ = repro.run_experiment("quickstart", seed=2, overrides=TINY)
    hist_b, _ = repro.run_experiment("quickstart", seed=2, overrides=TINY)
    # wall_time_sec is the only nondeterministic field.
    assert hist_a.train_losses().tolist() == hist_b.train_losses().tolist()
    assert hist_a.final_accuracy == hist_b.final_accuracy
    assert [r.bytes_down for r in hist_a.records] == [
        r.bytes_down for r in hist_b.records
    ]


def test_run_experiment_traced_artifacts(tmp_path):
    out = tmp_path / "artifacts"
    history, artifacts = repro.run_experiment(
        "quickstart", seed=1, overrides=TINY, trace=True, artifacts_dir=out
    )
    assert artifacts == out
    assert {p.name for p in out.iterdir()} == {
        "summary.json", "rounds.csv", "events.jsonl"
    }
    reloaded = History.from_json((out / "summary.json").read_text())
    assert reloaded.to_dict() == history.to_dict()


def test_run_experiment_callbacks_forwarded():
    seen = []
    repro.run_experiment(
        "quickstart", seed=1, overrides=TINY,
        callbacks=[lambda rec: seen.append(rec.round_idx)],
    )
    assert seen == [0, 1]


def test_run_experiment_switches_algorithm():
    history, _ = repro.run_experiment(
        "quickstart", seed=1, overrides={**TINY, "algorithm": "fedavg"}
    )
    assert history.algorithm == "fedavg"


def test_top_level_lazy_exports():
    assert repro.run_experiment is not None
    assert callable(repro.list_presets)
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_run_experiment_checkpoints_and_resumes(tmp_path):
    ckpt = tmp_path / "ckpt"
    baseline, _ = repro.run_experiment(
        "quickstart", seed=3, overrides=TINY, checkpoint_dir=ckpt
    )
    assert list(ckpt.glob("ckpt-*.rck"))
    # Lose the newest checkpoint (as a crash between rounds would) and
    # resume: the replayed round must reproduce the baseline exactly.
    (ckpt / "ckpt-00000001.rck").unlink()
    resumed, _ = repro.run_experiment(
        "quickstart", seed=3, overrides=TINY, checkpoint_dir=ckpt, resume=True
    )
    assert resumed.train_losses().tolist() == baseline.train_losses().tolist()
    assert resumed.final_accuracy == baseline.final_accuracy
    assert [r.bytes_up for r in resumed.records] == [
        r.bytes_up for r in baseline.records
    ]


def test_run_experiment_artifacts_carry_provenance(tmp_path):
    import json

    out = tmp_path / "artifacts"
    repro.run_experiment(
        "quickstart", seed=1, overrides=TINY, trace=True, artifacts_dir=out
    )
    prov = json.loads((out / "summary.json").read_text())["provenance"]
    assert prov["seed"] == 1
    assert {"repro_version", "config_hash", "algorithm", "dtype"} <= set(prov)
