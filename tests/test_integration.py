"""Cross-module integration tests.

These exercise whole-system behaviours that no single-module test can:
the regularizer actually shrinking cross-client feature discrepancy
during federated training, end-to-end composition of compression +
regularization + selection, and system-level reproducibility.
"""

import numpy as np
import pytest

from repro.algorithms import FedAvg, RFedAvgPlus, make_algorithm
from repro.analysis.tsne import client_marginal_discrepancy
from repro.fl.compression import UniformQuantizer
from repro.fl.config import FLConfig
from repro.fl.selection import PowerOfChoiceSelector
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.nn.serialization import set_flat_params
from tests.conftest import make_toy_federation


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _client_marginals(alg, fed, model_fn):
    model = model_fn()
    set_flat_params(model, alg.global_params)
    model.eval()
    return [model.features.forward(shard.x) for shard in fed.clients]


def test_regularizer_shrinks_feature_discrepancy_end_to_end():
    """The core mechanism, measured through the whole stack: after
    training, rFedAvg+'s clients have closer feature marginals than
    FedAvg's on the same non-IID federation."""
    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(rounds=15, local_steps=4, batch_size=16, lr=0.3, eval_every=15, seed=0)
    model_fn = _model_fn(fed)

    avg = FedAvg()
    run_federated(avg, fed, model_fn, config)
    reg = RFedAvgPlus(lam=0.05)
    run_federated(reg, fed, model_fn, config)

    disc_avg = client_marginal_discrepancy(_client_marginals(avg, fed, model_fn))
    disc_reg = client_marginal_discrepancy(_client_marginals(reg, fed, model_fn))
    assert disc_reg < disc_avg


def test_regularizer_tracks_its_own_loss_down():
    """The reported reg_loss should trend downward as embeddings align."""
    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(rounds=16, local_steps=4, batch_size=16, lr=0.3, eval_every=16, seed=1)
    alg = RFedAvgPlus(lam=0.05)
    history = run_federated(alg, fed, _model_fn(fed), config)
    reg_losses = np.array([r.reg_loss for r in history.records[1:]])  # skip warm-up
    assert reg_losses[-4:].mean() < reg_losses[:4].mean()


def test_full_stack_composition_runs():
    """Regularizer + quantized uploads + loss-biased selection together."""
    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(rounds=6, local_steps=3, batch_size=16, lr=0.2,
                      sample_ratio=0.5, seed=2)
    alg = RFedAvgPlus(lam=1e-3).with_compressor(UniformQuantizer(8))
    history = run_federated(
        alg, fed, _model_fn(fed), config,
        selector=PowerOfChoiceSelector(0.5, candidate_factor=2.0),
    )
    assert len(history.records) == 6
    assert np.isfinite(history.final_accuracy)
    assert alg.ledger.total("up:model") < alg.ledger.total("down:model")


@pytest.mark.parametrize("name,kwargs", [
    ("rfedavg", {"lam": 1e-3}),
    ("rfedavg+", {"lam": 1e-3}),
    ("scaffold", {}),
    ("fednova", {}),
    ("fedavgm", {}),
])
def test_algorithms_bit_reproducible(name, kwargs):
    """System-level determinism across independently constructed runs."""
    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(rounds=4, local_steps=2, batch_size=8, lr=0.1, seed=7)
    first = make_algorithm(name, **kwargs)
    run_federated(first, fed, _model_fn(fed), config)
    second = make_algorithm(name, **kwargs)
    run_federated(second, fed, _model_fn(fed), config)
    np.testing.assert_array_equal(first.global_params, second.global_params)


def test_history_bytes_match_ledger():
    """The per-round bytes recorded in History must equal the ledger's."""
    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=3)
    alg = RFedAvgPlus(lam=1e-3)
    history = run_federated(alg, fed, _model_fn(fed), config)
    for round_idx, record in enumerate(history.records):
        ledger_round = alg.ledger.round_bytes(round_idx)
        assert record.bytes_down == ledger_round.get("down", 0)
        assert record.bytes_up == ledger_round.get("up", 0)


def test_lstm_federated_end_to_end():
    """The sequence path (Embedding -> LSTM -> regularizer) through the
    full federated stack with RMSProp, as the paper runs Sent140."""
    from repro.experiments import build_sent140_federation, default_model_fn

    fed = build_sent140_federation(num_users=6, seed=0)
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, optimizer="rmsprop",
                      lr=0.01, eval_every=1, seed=0)
    history = run_federated(
        RFedAvgPlus(lam=1e-2), fed, default_model_fn("lstm", fed.spec, scale=0.1), config
    )
    assert np.isfinite(history.final_accuracy)
    assert history.records[-1].reg_loss >= 0.0
