"""Cross-dtype checkpoint migration (repro.ckpt.recast).

The resume gate is strict about dtype on purpose; recast is the
explicit, provenance-stamped escape hatch.  The matrix below proves
both halves: raw cross-dtype resume REFUSES in both directions, and a
recast checkpoint RESUMES in both directions — including while
extending the round budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import read_manifest, recast_checkpoint, recast_latest
from repro.ckpt.recast import recast_tree
from repro.exceptions import CheckpointError, CheckpointMismatchError
from repro.fl.config import FLConfig
from tests.conftest import make_toy_federation
from tests.helpers import run_with_workers

ROUNDS = 4


def _config(dtype: str, **overrides) -> FLConfig:
    base = dict(
        rounds=ROUNDS, local_steps=2, batch_size=8, lr=0.1, seed=47, dtype=dtype
    )
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def _checkpointed_run(fed, tmp_path, dtype: str, name="rfedavg+", kwargs=None):
    src_dir = tmp_path / f"ckpt-{dtype}"
    config = _config(dtype, checkpoint_dir=str(src_dir), checkpoint_keep=50)
    run_with_workers(name, kwargs or {"lam": 1e-3}, fed, config, num_workers=1)
    return src_dir, config


# -- the refusal/recast matrix ------------------------------------------------------


@pytest.mark.parametrize(
    "src_dtype,dst_dtype",
    [("float64", "float32"), ("float32", "float64")],
    ids=["f64-to-f32", "f32-to-f64"],
)
def test_raw_cross_dtype_resume_refuses(fed, tmp_path, src_dtype, dst_dtype):
    src_dir, _ = _checkpointed_run(fed, tmp_path, src_dtype)
    # Match everything except dtype: the dtype gate must fire, not the
    # config-hash gate (dtype is deliberately its own, clearer, error).
    target = _config(dst_dtype, checkpoint_dir=str(src_dir), resume=True)
    with pytest.raises(CheckpointMismatchError, match="dtype"):
        run_with_workers("rfedavg+", {"lam": 1e-3}, fed, target, num_workers=1)


@pytest.mark.parametrize(
    "src_dtype,dst_dtype",
    [("float64", "float32"), ("float32", "float64")],
    ids=["f64-to-f32", "f32-to-f64"],
)
def test_recast_then_resume_completes(fed, tmp_path, src_dtype, dst_dtype):
    src_dir, _ = _checkpointed_run(fed, tmp_path, src_dtype)
    dst_dir = tmp_path / "recast"
    target = _config(dst_dtype, checkpoint_dir=str(dst_dir), checkpoint_keep=50)
    recast_latest(src_dir, dst_dir, config=target)
    algorithm, history = run_with_workers(
        "rfedavg+", {"lam": 1e-3}, fed, target.with_updates(resume=True),
        num_workers=1,
    )
    assert algorithm.global_params.dtype == np.dtype(dst_dtype)
    assert len(history.records) == ROUNDS
    assert np.isfinite(history.records[-1].train_loss)


def test_recast_supports_extending_the_run(fed, tmp_path):
    """Recasting may retarget a longer round budget: the stamp describes
    the target config, so rounds_total moves with it."""
    src_dir, _ = _checkpointed_run(fed, tmp_path, "float64")
    dst_dir = tmp_path / "recast"
    target = _config(
        "float32", rounds=ROUNDS + 2, checkpoint_dir=str(dst_dir),
        checkpoint_keep=50,
    )
    recast_latest(src_dir, dst_dir, config=target)
    _, history = run_with_workers(
        "rfedavg+", {"lam": 1e-3}, fed, target.with_updates(resume=True),
        num_workers=1,
    )
    assert len(history.records) == ROUNDS + 2


def test_same_dtype_recast_is_refused(fed, tmp_path):
    src_dir, config = _checkpointed_run(fed, tmp_path, "float64")
    with pytest.raises(CheckpointError, match="crossing dtypes"):
        recast_latest(src_dir, tmp_path / "copy", config=config)


# -- provenance audit ---------------------------------------------------------------


def test_recast_stamps_target_provenance_and_keeps_source_audit(fed, tmp_path):
    src_dir, src_config = _checkpointed_run(fed, tmp_path, "float64")
    dst_dir = tmp_path / "recast"
    target = _config("float32", checkpoint_dir=str(dst_dir))
    dst_path = recast_latest(src_dir, dst_dir, config=target)
    assert dst_path.name == sorted(p.name for p in src_dir.glob("ckpt-*.rck"))[-1]
    meta = read_manifest(dst_path)["meta"]
    stamp = meta["provenance"]
    assert stamp["dtype"] == "float32"
    assert stamp["algorithm"] == "rfedavg+"
    audit = stamp["recast_from"]
    assert audit["dtype"] == "float64"
    assert audit["config_hash"] != stamp["config_hash"]
    assert meta["rounds_total"] == target.rounds


def test_recast_latest_requires_a_valid_checkpoint(fed, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(CheckpointError, match="no valid checkpoint"):
        recast_latest(empty, tmp_path / "out", config=_config("float32"))
    # A torn file does not count as valid either.
    torn_dir = tmp_path / "torn"
    src_dir, _ = _checkpointed_run(fed, torn_dir, "float64")
    for path in src_dir.glob("ckpt-*.rck"):
        path.write_bytes(path.read_bytes()[:-7])
    with pytest.raises(CheckpointError, match="no valid checkpoint"):
        recast_latest(src_dir, tmp_path / "out2", config=_config("float32"))


# -- the tree cast itself -----------------------------------------------------------


def test_recast_tree_touches_only_floating_arrays():
    tree = {
        "params": np.linspace(0, 1, 7, dtype=np.float64),
        "nested": [np.float32([1.5, 2.5]), {"deep": np.float64([3.0])}],
        "client_ids": np.arange(5, dtype=np.int64),
        "reported": np.array([True, False]),
        "rng_words": np.arange(4, dtype=np.uint32),
        "count": 12,
        "ratio": 0.25,
        "label": "stream",
    }
    out = recast_tree(tree, np.dtype("float32"))
    assert out["params"].dtype == np.float32
    np.testing.assert_allclose(out["params"], tree["params"], rtol=1e-6)
    assert out["nested"][0].dtype == np.float32  # already target: unchanged
    assert out["nested"][0] is tree["nested"][0]
    assert out["nested"][1]["deep"].dtype == np.float32
    assert out["client_ids"].dtype == np.int64
    assert out["client_ids"] is tree["client_ids"]
    assert out["reported"].dtype == bool
    assert out["rng_words"].dtype == np.uint32
    assert out["count"] == 12 and out["ratio"] == 0.25 and out["label"] == "stream"


def test_recast_checkpoint_rejects_missing_source(tmp_path):
    with pytest.raises(CheckpointError):
        recast_checkpoint(
            tmp_path / "nope.rck", tmp_path / "out.rck",
            config=_config("float32"),
        )
