"""Crash/resume equivalence: a resumed run is bit-identical to an
uninterrupted one.

The crash is simulated two ways: by deleting every checkpoint newer than
the crash point (as if the process died mid-round, after its last
successful checkpoint) and — for one hard case — by actually killing a
subprocess with ``os._exit`` from inside a round callback.  Either way,
resuming must reproduce the uninterrupted run exactly: final parameters,
every History field except wall time, and per-round ledger bytes.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.exceptions import CheckpointMismatchError
from repro.fl.config import FLConfig
from repro.fl.faults import FaultModel
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers

# (name, constructor kwargs, slow?) — mirrors the parallel-equivalence matrix.
MATRIX = [
    ("fedavg", {}, False),
    ("fedavgm", {}, False),
    ("fednova", {}, False),
    ("fedprox", {"mu": 0.1}, False),
    ("moon", {"mu": 0.5}, True),
    ("scaffold", {}, False),
    ("qfedavg", {"q": 1.0}, False),
    ("rfedavg", {"lam": 1e-3}, True),
    ("rfedavg+", {"lam": 1e-3}, False),
    ("rfedavg_exact", {"lam": 1e-3}, True),
]

ROUNDS = 6
CRASH_ROUND = 3  # rounds >= this lose their checkpoint


def _config(**overrides) -> FLConfig:
    base = dict(rounds=ROUNDS, local_steps=2, batch_size=8, lr=0.1, seed=31)
    base.update(overrides)
    return FLConfig(**base)


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def _simulate_crash(ckpt_dir: Path, crash_round: int = CRASH_ROUND) -> None:
    """Drop every checkpoint from ``crash_round`` on, as a crash would."""
    removed = 0
    for round_idx in range(crash_round, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
            removed += 1
    assert removed > 0, "crash simulation deleted nothing — cadence changed?"


def _crash_and_resume(
    name,
    kwargs,
    fed,
    tmp_path,
    *,
    num_workers=1,
    executor="auto",
    transport="wire",
    decorate=None,
    config=None,
):
    """Uninterrupted baseline vs crash-at-CRASH_ROUND-then-resume."""
    config = config if config is not None else _config()
    baseline = run_with_workers(
        name, kwargs, fed, config, num_workers=num_workers,
        executor=executor, transport=transport, decorate=decorate,
    )
    ckpt_dir = tmp_path / "ckpt"
    ckpt_config = config.with_updates(
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50
    )
    run_with_workers(
        name, kwargs, fed, ckpt_config, num_workers=num_workers,
        executor=executor, transport=transport, decorate=decorate,
    )
    _simulate_crash(ckpt_dir)
    resumed = run_with_workers(
        name, kwargs, fed, ckpt_config.with_updates(resume=True),
        num_workers=num_workers, executor=executor, transport=transport,
        decorate=decorate,
    )
    assert_equivalent_runs(baseline, resumed)
    return baseline, resumed


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in MATRIX
    ],
)
def test_crash_resume_is_bit_identical(fed, name, kwargs, tmp_path):
    _crash_and_resume(name, kwargs, fed, tmp_path)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param("scaffold", {}, id="scaffold"),
        pytest.param(
            "rfedavg+", {"lam": 1e-3}, id="rfedavg+", marks=[pytest.mark.slow]
        ),
    ],
)
def test_crash_resume_under_parallel_wire(fed, name, kwargs, tmp_path):
    """Resume composes with the process executor and packed wire."""
    _crash_and_resume(
        name, kwargs, fed, tmp_path,
        num_workers=2, executor="process", transport="wire",
    )


@pytest.mark.parametrize(
    "name,kwargs,overrides",
    [
        pytest.param("fedavg", {}, {"compression": "topk:0.25|qsgd:8"}, id="fedavg-ef"),
        pytest.param(
            "rfedavg+",
            {"lam": 1e-3},
            {"compression": "topk:0.25|qsgd:8", "sync_compression": "qsgd:8"},
            id="rfedavg+-ef-sync",
        ),
    ],
)
def test_crash_resume_with_error_feedback_residuals(fed, name, kwargs, overrides, tmp_path):
    """Crash with non-empty error-feedback residuals, resume, bit-identical.

    By CRASH_ROUND every client has accumulated a non-zero residual, so
    this exercises the ``ef_residuals`` checkpoint segments (and, for
    rfedavg+, the second-synchronization model/delta residuals) rather
    than the trivially-empty-table path.
    """
    import numpy as np

    baseline, resumed = _crash_and_resume(
        name, kwargs, fed, tmp_path, config=_config(**overrides)
    )
    algorithm = resumed[0]
    assert algorithm._residuals is not None
    norms = [
        float(np.linalg.norm(algorithm._residuals.get(cid)))
        for cid in range(fed.num_clients)
    ]
    assert max(norms) > 0.0, "residuals never became non-trivial — weak test"


def test_crash_resume_with_faults(fed, tmp_path):
    """The fault model's RNG stream and counters survive a resume."""
    models = []

    def decorate(algorithm):
        fault = FaultModel(dropout_prob=0.4, seed=9)
        models.append(fault)
        algorithm.with_faults(fault)

    baseline, resumed = _crash_and_resume(
        "scaffold", {}, fed, tmp_path, decorate=decorate
    )
    uninterrupted, _checkpointed, restored = models
    assert restored.dropped_total == uninterrupted.dropped_total
    assert uninterrupted.dropped_total > 0


def test_resume_rolls_back_past_corrupt_newest(fed, tmp_path):
    config = _config()
    baseline = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    ckpt_dir = tmp_path / "ckpt"
    ckpt_config = config.with_updates(checkpoint_dir=str(ckpt_dir), checkpoint_keep=50)
    run_with_workers("fedavg", {}, fed, ckpt_config, num_workers=1)
    _simulate_crash(ckpt_dir, crash_round=CRASH_ROUND + 1)
    # The newest surviving checkpoint is itself torn.
    torn = ckpt_dir / f"ckpt-{CRASH_ROUND:08d}.rck"
    torn.write_bytes(torn.read_bytes()[:-10])
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        resumed = run_with_workers(
            "fedavg", {}, fed, ckpt_config.with_updates(resume=True), num_workers=1
        )
    assert_equivalent_runs(baseline, resumed)


def test_resume_with_no_checkpoints_is_a_fresh_run(fed, tmp_path):
    config = _config()
    baseline = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    ckpt_dir = tmp_path / "empty"
    ckpt_dir.mkdir()
    resumed = run_with_workers(
        "fedavg", {}, fed,
        config.with_updates(checkpoint_dir=str(ckpt_dir), resume=True),
        num_workers=1,
    )
    assert_equivalent_runs(baseline, resumed)
    assert list(ckpt_dir.glob("ckpt-*.rck"))  # and it checkpointed as it went


def test_resume_of_completed_run_reproduces_history(fed, tmp_path):
    config = _config(checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_keep=50)
    full = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    again = run_with_workers(
        "fedavg", {}, fed, config.with_updates(resume=True), num_workers=1
    )
    assert_equivalent_runs(full, again)


def test_resume_refuses_mismatched_configuration(fed, tmp_path):
    short = _config(rounds=3, checkpoint_dir=str(tmp_path / "ckpt"))
    run_with_workers("fedavg", {}, fed, short, num_workers=1)
    with pytest.raises(CheckpointMismatchError, match="config_hash"):
        run_with_workers(
            "fedavg", {}, fed,
            _config(rounds=ROUNDS, checkpoint_dir=str(tmp_path / "ckpt"), resume=True),
            num_workers=1,
        )


def test_resume_refuses_different_algorithm(fed, tmp_path):
    config = _config(checkpoint_dir=str(tmp_path / "ckpt"))
    run_with_workers("fedavg", {}, fed, config, num_workers=1)
    with pytest.raises(CheckpointMismatchError, match="algorithm"):
        run_with_workers(
            "scaffold", {}, fed, config.with_updates(resume=True), num_workers=1
        )


_CRASH_SCRIPT = textwrap.dedent(
    """
    import os
    import sys

    sys.path.insert(0, "src")
    sys.path.insert(0, ".")

    from tests.conftest import make_toy_federation
    from tests.helpers import tiny_model_fn
    from repro.algorithms import make_algorithm
    from repro.fl.config import FLConfig
    from repro.fl.trainer import run_federated

    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(
        rounds={rounds}, local_steps=2, batch_size=8, lr=0.1, seed=31,
        checkpoint_dir=sys.argv[1], checkpoint_keep=50,
    )

    def die_mid_run(record):
        if record.round_idx == {crash_round}:
            os._exit(17)

    run_federated(
        make_algorithm("scaffold"), fed, tiny_model_fn(fed), config,
        callbacks=[die_mid_run],
    )
    os._exit(0)
    """
)


@pytest.mark.slow
def test_hard_process_kill_then_resume(fed, tmp_path):
    """os._exit mid-run leaves a resumable directory behind.

    Round callbacks fire before the round's checkpoint is written, so the
    kill lands between the round-``CRASH_ROUND - 1`` checkpoint and the
    round-``CRASH_ROUND`` one — a genuinely torn run, not a tidy stop.
    """
    repo_root = Path(__file__).resolve().parents[2]
    script = tmp_path / "crash_run.py"
    script.write_text(_CRASH_SCRIPT.format(rounds=ROUNDS, crash_round=CRASH_ROUND))
    ckpt_dir = tmp_path / "ckpt"
    proc = subprocess.run(
        [sys.executable, str(script), str(ckpt_dir)],
        cwd=repo_root,
        env={**os.environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 17, proc.stderr
    rounds_on_disk = sorted(
        int(p.stem.split("-")[1]) for p in ckpt_dir.glob("ckpt-*.rck")
    )
    assert rounds_on_disk == list(range(CRASH_ROUND)), rounds_on_disk

    baseline = run_with_workers("scaffold", {}, fed, _config(), num_workers=1)
    resumed = run_with_workers(
        "scaffold", {}, fed,
        _config(checkpoint_dir=str(ckpt_dir), checkpoint_keep=50, resume=True),
        num_workers=1,
    )
    assert_equivalent_runs(baseline, resumed)
