"""RCK1 container tests: tree codec round-trips and corruption detection.

The format's contract is binary: a checkpoint either reads back exactly
what was written (arrays dtype-true, big ints intact, tuples typed) or
raises :class:`~repro.exceptions.CheckpointError` — never a silently
wrong value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.format import (
    MAGIC,
    pack_tree,
    read_checkpoint,
    read_manifest,
    unpack_tree,
    write_checkpoint,
)
from repro.exceptions import CheckpointError


# -- tree codec --------------------------------------------------------------------


def test_tree_round_trips_arrays_dtype_true():
    tree = {
        "f64": np.linspace(0, 1, 7),
        "f32": np.ones(3, dtype=np.float32),
        "i64": np.arange(4),
        "i32": np.arange(4, dtype=np.int32),
        "bool": np.array([True, False, True]),
        "u8": np.arange(5, dtype=np.uint8),
        "mat": np.arange(6.0).reshape(2, 3),
    }
    out = unpack_tree(pack_tree(tree))
    for key, value in tree.items():
        np.testing.assert_array_equal(out[key], value)
        assert out[key].dtype == value.dtype, key


def test_tree_arrays_come_back_writable():
    out = unpack_tree(pack_tree({"a": np.zeros(3)}))
    out["a"][0] = 1.0  # restore paths write into decoded arrays


def test_tree_round_trips_scalars_bytes_tuples_and_big_ints():
    tree = {
        "none": None,
        "str": "hello",
        "int": -7,
        "float": 2.5,
        "bool": True,
        "bytes": b"\x00\xff\x7f",
        "tuple": (1, "two", (3.0, None)),
        # PCG64 bit-generator state carries 128-bit integers.
        "big": 2**127 + 12345,
        "inf": float("inf"),
        "list": [1, [2, [3]]],
        "np_scalar": np.int64(42),
    }
    out = unpack_tree(pack_tree(tree))
    assert out["none"] is None
    assert out["str"] == "hello"
    assert out["int"] == -7 and out["float"] == 2.5 and out["bool"] is True
    assert out["bytes"] == b"\x00\xff\x7f"
    assert out["tuple"] == (1, "two", (3.0, None))
    assert isinstance(out["tuple"], tuple) and isinstance(out["tuple"][2], tuple)
    assert out["big"] == 2**127 + 12345
    assert out["inf"] == float("inf")
    assert out["list"] == [1, [2, [3]]]
    assert out["np_scalar"] == 42


def test_tree_round_trips_rng_state():
    gen = np.random.default_rng([3, 0xF1])
    gen.random(100)
    state = gen.bit_generator.state
    restored = unpack_tree(pack_tree({"rng": state}))["rng"]
    other = np.random.default_rng(0)
    other.bit_generator.state = restored
    np.testing.assert_array_equal(gen.random(16), other.random(16))


def test_tree_rejects_reserved_keys_and_unknown_types():
    with pytest.raises(CheckpointError):
        pack_tree({"__nd__": 1})
    with pytest.raises(CheckpointError):
        pack_tree({"bad": object()})
    with pytest.raises(CheckpointError):
        pack_tree({1: "non-string key"})  # type: ignore[dict-item]


# -- file container ----------------------------------------------------------------


def _write(tmp_path, meta=None, sections=None):
    path = tmp_path / "ckpt-00000001.rck"
    write_checkpoint(
        path,
        meta if meta is not None else {"round_idx": 1},
        sections
        if sections is not None
        else {
            "model": pack_tree({"params": np.arange(5.0)}),
            "rng": pack_tree({"state": 123}),
        },
    )
    return path


def test_write_read_round_trip(tmp_path):
    path = _write(tmp_path)
    manifest, sections = read_checkpoint(path)
    assert manifest["meta"]["round_idx"] == 1
    assert set(sections) == {"model", "rng"}
    np.testing.assert_array_equal(
        unpack_tree(sections["model"])["params"], np.arange(5.0)
    )
    assert read_manifest(path)["meta"] == manifest["meta"]


def test_write_leaves_no_temporaries(tmp_path):
    _write(tmp_path)
    assert [p.name for p in tmp_path.iterdir()] == ["ckpt-00000001.rck"]


@pytest.mark.parametrize("offset_from_end", [1, 40])
def test_section_bit_flip_is_detected(tmp_path, offset_from_end):
    path = _write(tmp_path)
    data = bytearray(path.read_bytes())
    data[-offset_from_end] ^= 0x40
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="hash mismatch"):
        read_checkpoint(path)


def test_manifest_bit_flip_is_detected(tmp_path):
    path = _write(tmp_path)
    data = bytearray(path.read_bytes())
    data[30] ^= 0x01  # inside the JSON manifest
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="manifest"):
        read_checkpoint(path)


def test_truncation_is_detected(tmp_path):
    path = _write(tmp_path)
    data = path.read_bytes()
    for cut in (3, 20, len(data) - 5):
        path.write_bytes(data[:cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


def test_bad_magic_is_detected(tmp_path):
    path = _write(tmp_path)
    data = bytearray(path.read_bytes())
    data[: len(MAGIC)] = b"NOPE\n"
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="magic"):
        read_checkpoint(path)


def test_missing_file_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        read_checkpoint(tmp_path / "nope.rck")


def test_overwrite_is_atomic_under_same_name(tmp_path):
    path = _write(tmp_path)
    write_checkpoint(path, {"round_idx": 2}, {"s": pack_tree({"v": 9})})
    manifest, sections = read_checkpoint(path)
    assert manifest["meta"]["round_idx"] == 2
    assert unpack_tree(sections["s"])["v"] == 9
