"""Provenance tests: config hashing invariants and resume refusal."""

from __future__ import annotations

import pytest

import repro
from repro.ckpt.provenance import (
    check_resume_compatible,
    config_hash,
    run_provenance,
)
from repro.exceptions import CheckpointMismatchError
from repro.fl.config import FLConfig


def _config(**kwargs):
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=31)
    base.update(kwargs)
    return FLConfig(**base)


def test_hash_ignores_execution_only_fields(tmp_path):
    base = _config()
    varied = _config(
        num_workers=4,
        executor="process",
        transport="wire",
        checkpoint_dir=str(tmp_path),
        checkpoint_every=2,
        checkpoint_keep=7,
    )
    assert config_hash(base) == config_hash(varied)
    # resume alone needs checkpoint_dir to validate, hence the pairing.
    resumed = _config(checkpoint_dir=str(tmp_path), resume=True)
    assert config_hash(base) == config_hash(resumed)


@pytest.mark.parametrize(
    "field,value",
    [("rounds", 9), ("local_steps", 5), ("lr", 0.2), ("seed", 99), ("dtype", "float32")],
)
def test_hash_varies_on_numeric_fields(field, value):
    assert config_hash(_config()) != config_hash(_config(**{field: value}))


def test_run_provenance_contents():
    prov = run_provenance(_config(), "scaffold")
    assert prov["algorithm"] == "scaffold"
    assert prov["seed"] == 31
    assert prov["dtype"] == _config().dtype
    assert prov["repro_version"] == repro.__version__
    assert prov["config_hash"] == config_hash(_config())


def test_compatible_provenance_passes():
    prov = run_provenance(_config(), "fedavg")
    check_resume_compatible(dict(prov), dict(prov))
    # Execution engine may differ freely.
    other = run_provenance(
        _config(num_workers=2, executor="process", transport="wire"), "fedavg"
    )
    check_resume_compatible(prov, other)


def test_mismatch_is_refused_with_actionable_message():
    stored = run_provenance(_config(), "fedavg")
    current = run_provenance(_config(rounds=9, lr=0.5), "scaffold")
    with pytest.raises(CheckpointMismatchError) as excinfo:
        check_resume_compatible(stored, current)
    message = str(excinfo.value)
    assert "config_hash" in message
    assert "algorithm" in message
    assert "'fedavg'" in message and "'scaffold'" in message
    # The message must tell the user what to do next.
    assert "fresh directory" in message


def test_version_difference_is_reported_but_only_on_real_mismatch():
    stored = run_provenance(_config(), "fedavg")
    stored["repro_version"] = "0.0.1"
    # Same config hash: version alone does not refuse.
    check_resume_compatible(stored, run_provenance(_config(), "fedavg"))
    # Real mismatch: the version note rides along.
    with pytest.raises(CheckpointMismatchError, match="0.0.1"):
        check_resume_compatible(stored, run_provenance(_config(seed=1), "fedavg"))
