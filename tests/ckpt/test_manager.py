"""CheckpointManager tests: naming, retention, rollback, stray cleanup."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.format import pack_tree, unpack_tree
from repro.ckpt.manager import CheckpointManager
from repro.exceptions import CheckpointError


def _save(manager, round_idx, value=None):
    payload = np.arange(4.0) if value is None else value
    return manager.save(
        round_idx,
        {"round_idx": round_idx},
        {"model": pack_tree({"params": payload})},
    )


def test_naming_is_zero_padded_round_index(tmp_path):
    manager = CheckpointManager(tmp_path)
    assert manager.path_for(3).name == "ckpt-00000003.rck"
    assert manager.path_for(12345678).name == "ckpt-12345678.rck"


def test_keep_must_be_positive(tmp_path):
    with pytest.raises(CheckpointError):
        CheckpointManager(tmp_path, keep=0)


def test_save_creates_directory_and_lists_rounds(tmp_path):
    manager = CheckpointManager(tmp_path / "run", keep=5)
    for r in (0, 2, 1):
        _save(manager, r)
    assert manager.checkpoint_rounds() == [0, 1, 2]


def test_retention_keeps_newest(tmp_path):
    manager = CheckpointManager(tmp_path, keep=2)
    for r in range(5):
        _save(manager, r)
    assert manager.checkpoint_rounds() == [3, 4]


def test_load_latest_valid_returns_newest(tmp_path):
    manager = CheckpointManager(tmp_path, keep=10)
    for r in range(3):
        _save(manager, r, value=np.full(3, float(r)))
    manifest, sections = manager.load_latest_valid()
    assert manifest["meta"]["round_idx"] == 2
    np.testing.assert_array_equal(
        unpack_tree(sections["model"])["params"], np.full(3, 2.0)
    )


def test_corrupt_newest_rolls_back_with_warning(tmp_path):
    manager = CheckpointManager(tmp_path, keep=10)
    for r in range(3):
        _save(manager, r)
    newest = manager.path_for(2)
    data = bytearray(newest.read_bytes())
    data[-1] ^= 0xFF
    newest.write_bytes(bytes(data))
    with pytest.warns(RuntimeWarning, match="ckpt-00000002"):
        manifest, _ = manager.load_latest_valid()
    assert manifest["meta"]["round_idx"] == 1


def test_empty_directory_yields_none(tmp_path):
    manager = CheckpointManager(tmp_path / "nonexistent")
    assert manager.load_latest_valid() is None
    assert manager.latest_manifest() is None
    assert manager.checkpoint_rounds() == []


def test_all_corrupt_yields_none(tmp_path):
    manager = CheckpointManager(tmp_path)
    _save(manager, 0)
    manager.path_for(0).write_bytes(b"garbage")
    with pytest.warns(RuntimeWarning):
        assert manager.load_latest_valid() is None


def test_stray_temporaries_are_cleaned_on_construction(tmp_path):
    stray = tmp_path / "ckpt-00000007.rck.tmp-1234"
    stray.write_bytes(b"half-written")
    CheckpointManager(tmp_path)
    assert not stray.exists()


def test_latest_manifest_is_cheap_probe(tmp_path):
    manager = CheckpointManager(tmp_path)
    _save(manager, 4)
    manifest = manager.latest_manifest()
    assert manifest["meta"]["round_idx"] == 4
