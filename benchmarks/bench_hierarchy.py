"""Hierarchical-aggregation benchmark: region-parallel speedup and
cloud-link traffic reduction.

Three studies, each gated behind bit-identity checks:

* **identity** — ``topology='hier:1:1'`` must reproduce the flat engine
  bit for bit (params + per-round ledger) for every registered
  algorithm.  This gate is fatal: no timing or bytes number is reported
  from a run that broke the invariant.
* **region-parallel speedup** — a device-latency scenario (every client
  sleeps a fixed simulated device time) run hierarchically, serial vs
  the wire-transport process pool executing all regions concurrently.
  Client latencies on different workers overlap, so the pool wins
  regardless of host core count.  Serial and parallel hierarchical runs
  must be bit-identical before the speedup counts.
* **cloud-bytes reduction** — the WAN argument for hierarchy: with R
  regions syncing every P rounds, only ``2 R / P`` model transfers per
  round cross the charged cloud link instead of the flat engine's
  ``2 N``.  Compared at equal round counts on byte-exact ledgers.

Run directly (not under pytest-benchmark):

    PYTHONPATH=src python benchmarks/bench_hierarchy.py [--quick]

Writes ``BENCH_hierarchy.json`` next to the repo root.  Exits non-zero
if any gate fails (identity gates are checked first and fatally).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms import ALGORITHMS, FedAvg, make_algorithm
from repro.experiments import build_image_federation, default_model_fn
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.nn.serialization import num_params

CLIENTS = 16
WORKERS = 4
ROUNDS = 4
DEVICE_LATENCY_SEC = 0.35  # per-client simulated device time
SPEEDUP_TARGET = 1.3
CLOUD_BYTES_TARGET = 4.0

# rfedavg_exact refuses R > 1 by contract (region_aggregation_safe =
# False); it still participates in the hier:1:1 identity gate.
IDENTITY_MATRIX = [
    ("fedavg", {}),
    ("fedavgm", {}),
    ("fednova", {}),
    ("fedprox", {"mu": 0.1}),
    ("moon", {"mu": 0.5}),
    ("scaffold", {}),
    ("qfedavg", {"q": 1.0}),
    ("rfedavg", {"lam": 1e-3}),
    ("rfedavg+", {"lam": 1e-3}),
    ("rfedavg_exact", {"lam": 1e-3}),
]
QUICK_IDENTITY = [("fedavg", {}), ("scaffold", {})]


class LatencyFedAvg(FedAvg):
    """FedAvg whose clients carry a fixed simulated device latency."""

    name = "fedavg"

    def __init__(self, latency: float) -> None:
        super().__init__()
        self.latency = latency

    def _client_update(self, round_idx, client_id):
        time.sleep(self.latency)
        return super()._client_update(round_idx, client_id)


def _identity_fed():
    fed = build_image_federation(
        "synth_mnist", num_clients=8, similarity=0.0,
        num_train=800, num_test=200, seed=0,
    )
    model_fn = lambda: build_mlp(  # noqa: E731
        fed.spec.flat_dim, fed.spec.num_classes,
        np.random.default_rng(0), (16,), feature_dim=8,
    )
    return fed, model_fn


def _equivalent(run_a, run_b) -> bool:
    alg_a, hist_a = run_a
    alg_b, hist_b = run_b
    if not np.array_equal(alg_a.global_params, alg_b.global_params):
        return False
    if len(hist_a.records) != len(hist_b.records):
        return False
    for rec_a, rec_b in zip(hist_a.records, hist_b.records):
        if (
            rec_a.train_loss != rec_b.train_loss
            or rec_a.bytes_up != rec_b.bytes_up
            or rec_a.bytes_down != rec_b.bytes_down
            or rec_a.test_accuracy != rec_b.test_accuracy
        ):
            return False
    return True


def _run(name, kwargs, fed, model_fn, config, **run_kwargs):
    algorithm = make_algorithm(name, **kwargs)
    history = run_federated(algorithm, fed, model_fn, config, **run_kwargs)
    return algorithm, history


def identity_gate(quick: bool) -> dict:
    """hier:1:1 == flat, bit for bit, per algorithm.  Fatal on failure."""
    fed, model_fn = _identity_fed()
    config = FLConfig(
        rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=11, eval_every=3
    )
    matrix = QUICK_IDENTITY if quick else IDENTITY_MATRIX
    results = {}
    for name, kwargs in matrix:
        flat = _run(name, kwargs, fed, model_fn, config)
        hier = _run(
            name, kwargs, fed, model_fn, config.with_updates(topology="hier:1:1")
        )
        ok = _equivalent(flat, hier)
        results[name] = bool(ok)
        print(f"identity  {name:14s} hier:1:1 == flat: {ok}")
    if not quick:
        missing = set(ALGORITHMS) - {name for name, _ in IDENTITY_MATRIX}
        assert not missing, f"identity matrix misses algorithms: {missing}"
    return results


def speedup_study() -> dict:
    """Device-latency rounds, hier serial vs hier region-parallel."""
    fed = build_image_federation(
        "synth_cifar", num_clients=CLIENTS, similarity=0.5,
        num_train=1600, num_test=200, seed=0,
    )
    model_fn = default_model_fn("cnn", fed.spec, seed=0, scale=0.15)
    config = FLConfig(
        rounds=ROUNDS, local_steps=10, batch_size=32, lr=0.1,
        eval_every=ROUNDS, seed=0, topology=f"hier:{WORKERS}:2",
    )

    serial_alg = LatencyFedAvg(DEVICE_LATENCY_SEC)
    started = time.perf_counter()
    serial_hist = run_federated(serial_alg, fed, model_fn, config)
    serial_sec = time.perf_counter() - started

    parallel_alg = LatencyFedAvg(DEVICE_LATENCY_SEC)
    started = time.perf_counter()
    parallel_hist = run_federated(
        parallel_alg, fed, model_fn,
        config.with_updates(
            num_workers=WORKERS, executor="process", transport="wire"
        ),
    )
    parallel_sec = time.perf_counter() - started

    identical = _equivalent((serial_alg, serial_hist), (parallel_alg, parallel_hist))
    speedup = serial_sec / parallel_sec
    print(
        f"speedup   hier:{WORKERS}:2 device-latency  serial {serial_sec:6.2f}s  "
        f"region-parallel({WORKERS}) {parallel_sec:6.2f}s  "
        f"speedup {speedup:5.2f}x  bit-identical={identical}"
    )
    return {
        "topology": config.topology,
        "clients": CLIENTS,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "device_latency_sec": DEVICE_LATENCY_SEC,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_sec, 4),
        "parallel_seconds": round(parallel_sec, 4),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
    }


def cloud_bytes_study(edge_period: int = 4) -> dict:
    """Charged cloud-link bytes, flat vs hier:R:P at P >= 4."""
    fed, model_fn = _identity_fed()
    rounds = 2 * edge_period
    config = FLConfig(
        rounds=rounds, local_steps=2, batch_size=8, lr=0.1, seed=3,
        eval_every=rounds,
    )

    _flat_alg, flat_hist = _run("fedavg", {}, fed, model_fn, config)
    # Flat: every byte of every round crosses the cloud link.
    flat_cloud = sum(r.bytes_up + r.bytes_down for r in flat_hist.records)

    hier_rounds: list[dict] = []
    _run(
        "fedavg", {}, fed, model_fn,
        config.with_updates(topology=f"hier:4:{edge_period}"),
        region_observer=lambda info: hier_rounds.append(info["bytes"]),
    )
    hier_cloud = sum(
        v for rc in hier_rounds for k, v in rc.items()
        if k.partition(":")[2] == "cloud-model"
    )
    reduction = flat_cloud / hier_cloud if hier_cloud else float("inf")
    print(
        f"cloud-bytes  flat {flat_cloud}  hier:4:{edge_period} {hier_cloud}  "
        f"reduction {reduction:.1f}x over {rounds} rounds"
    )
    return {
        "topology": f"hier:4:{edge_period}",
        "rounds": rounds,
        "flat_cloud_bytes": int(flat_cloud),
        "hier_cloud_bytes": int(hier_cloud),
        "reduction": round(reduction, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: 2-algorithm identity gate, same speedup/bytes studies",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    fed, model_fn = _identity_fed()
    print(
        f"hierarchy bench (quick={args.quick}), host cores={os.cpu_count()}, "
        f"identity model {num_params(model_fn())} params"
    )

    identity = identity_gate(args.quick)
    identity_ok = all(identity.values())
    results: dict = {
        "quick": args.quick,
        "identity_hier_1_1": identity,
        "identity_ok": identity_ok,
    }
    if not identity_ok:
        # Fatal: do not report performance numbers off a broken engine.
        print("IDENTITY GATE FAILED — skipping performance studies")
    else:
        results["speedup"] = speedup_study()
        results["cloud_bytes"] = cloud_bytes_study()
        results["speedup_target"] = SPEEDUP_TARGET
        results["cloud_bytes_target"] = CLOUD_BYTES_TARGET
        results["speedup_target_met"] = bool(
            results["speedup"]["bit_identical"]
            and results["speedup"]["speedup"] >= SPEEDUP_TARGET
        )
        results["cloud_bytes_target_met"] = bool(
            results["cloud_bytes"]["reduction"] >= CLOUD_BYTES_TARGET
        )

    out_path = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_hierarchy.json"
    )
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not identity_ok:
        return 1
    return (
        0
        if results["speedup_target_met"] and results["cloud_bytes_target_met"]
        else 1
    )


if __name__ == "__main__":
    raise SystemExit(main())
