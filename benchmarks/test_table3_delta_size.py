"""Table III — size of the delta payload (bytes).

The paper reports the per-client delta state for CNN (d=702 effective)
and RNN models in cross-silo (N=20) and cross-device (N=500): rFedAvg's
state is N times rFedAvg+'s.  We reproduce the table twice: (a)
analytically from :class:`DeltaTable` with the paper's feature dims, and
(b) measured from an actual run's communication ledger at our scale.
"""

import numpy as np

from benchmarks.common import LAMBDA, banner, image_fed_builder, model_builder, silo_config, report
from repro.algorithms import RFedAvg, RFedAvgPlus
from repro.core.delta import DeltaTable
from repro.experiments.report import format_comm_table
from repro.fl.trainer import run_federated

# The paper's Table III uses float32 payloads with these effective dims
# (56160 B = 20 clients x 702 floats x 4 B for the cross-silo CNN row).
# In the cross-device rows only *participating* clients count:
# SR * N = 0.2 * 500 = 100 (280800 B = 100 x 702 x 4).
PAPER_DIMS = {"CNN": 702, "RNN": 446}
PAPER_SETTINGS = {"Cross-Silo": 20, "Cross-Device": 100}


def test_table3_analytic(once):
    def compute():
        rows = {"rfedavg": {}, "rfedavg+": {}}
        for setting, clients in PAPER_SETTINGS.items():
            for model, dim in PAPER_DIMS.items():
                table = DeltaTable(clients, dim, dtype_bytes=4)
                key = f"{setting[6:] or setting}-{model}"
                rows["rfedavg"][key] = table.per_client_state_bytes(plus=False)
                rows["rfedavg+"][key] = table.per_client_state_bytes(plus=True)
        return rows

    rows = once(compute)
    banner("Table III — size of delta (bytes), paper dims")
    report(format_comm_table(rows))
    # Exact paper values for the rows the paper prints.
    assert rows["rfedavg"]["Silo-CNN"] == 56160
    assert rows["rfedavg+"]["Silo-CNN"] == 2808
    assert rows["rfedavg"]["Silo-RNN"] == 35680
    assert rows["rfedavg+"]["Silo-RNN"] == 1784
    assert rows["rfedavg"]["Device-CNN"] == 280800
    assert rows["rfedavg+"]["Device-CNN"] == 2808  # N-independent
    assert rows["rfedavg"]["Device-RNN"] == 178400
    assert rows["rfedavg+"]["Device-RNN"] == 1784


def test_table3_measured_ledger(once):
    """The measured per-round delta downlink must scale as N^2 vs N."""

    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        config = silo_config(rounds=4)
        plain = RFedAvg(lam=LAMBDA)
        run_federated(plain, fed, model_builder("mlp")(fed, 0), config)
        plus = RFedAvgPlus(lam=LAMBDA)
        run_federated(plus, fed, model_builder("mlp")(fed, 0), config)
        # Same run with the second synchronization riding a compression
        # spec (error feedback on): the O(d N) delta re-upload shrinks.
        synced = RFedAvgPlus(lam=LAMBDA)
        run_federated(
            synced, fed, model_builder("mlp")(fed, 0),
            silo_config(rounds=4, sync_compression="topk:0.25|qsgd:8"),
        )
        return fed.num_clients, plain, plus, synced

    n, plain, plus, synced = once(run)
    down_plain = plain.ledger.total("down:delta")
    down_plus = plus.ledger.total("down:delta")
    banner("Table III (measured) — delta downlink over 4 rounds")
    report(f"rFedAvg  : {down_plain:,} B   (O(d N^2) per round)")
    report(f"rFedAvg+ : {down_plus:,} B   (O(d N) per round)")
    report(f"rFedAvg+ sync_compression=topk:0.25|qsgd:8 : "
           f"up:delta {synced.ledger.total('up:delta'):,} B "
           f"vs dense {plus.ledger.total('up:delta'):,} B")
    assert down_plain == n * down_plus
    # Upload side is identical (each client sends its own delta).
    assert plain.ledger.total("up:delta") == plus.ledger.total("up:delta")
    # The compressed second sync charges strictly fewer delta bytes, in
    # both directions of the second synchronization.
    assert synced.ledger.total("up:delta") < plus.ledger.total("up:delta")
    assert synced.ledger.total("down:model") < plus.ledger.total("down:model")
