"""Table II — cross-device test accuracy (scaled reproduction).

Paper: N=500, E=10, SR=0.2.  Here: N=50, SR=0.2, MLP, 40 rounds.
Partial participation makes non-IID harder (each round sees a biased
10-client subset), which is where the delayed global delta table helps.
"""

from benchmarks.common import (
    DEVICE_CLIENTS,
    IMAGE_ALGORITHMS,
    banner,
    device_config,
    image_fed_builder,
    run_comparison,
    report,
)
from repro.experiments.report import format_accuracy_table


def _run_table(dataset: str) -> dict:
    columns = {}
    for similarity, label in [(0.0, "Sim 0%"), (0.1, "Sim 10%"), (1.0, "Sim 100%")]:
        columns[label] = run_comparison(
            IMAGE_ALGORITHMS,
            image_fed_builder(dataset, DEVICE_CLIENTS, similarity),
            device_config(),
        )
    return columns


def test_table2_mnist(once):
    columns = once(_run_table, "synth_mnist")
    banner("Table II (scaled) — cross-device accuracy, synth-MNIST")
    report(format_accuracy_table(columns))
    for result in columns["Sim 100%"].values():
        assert result.accuracy_mean_std()[0] > 0.4


def test_table2_cifar(once):
    columns = once(_run_table, "synth_cifar")
    banner("Table II (scaled) — cross-device accuracy, synth-CIFAR")
    report(format_accuracy_table(columns))
    acc = {name: r.accuracy_mean_std()[0] for name, r in columns["Sim 0%"].items()}
    best_r = max(acc["rfedavg"], acc["rfedavg+"])
    assert best_r >= acc["fedavg"] - 0.02
