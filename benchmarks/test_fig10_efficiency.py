"""Figure 10 — efficiency evaluation (scaled).

(a)/(b): minimal communication rounds to reach accuracy levels on
MNIST / CIFAR (cross-device non-IID).  Expected shape: rFedAvg+ needs
no more rounds than FedAvg at the same level.

(c)/(d): training time per round.  Expected shape: rFedAvg+ is roughly
half of rFedAvg (one leave-one-out delta vs an N-row table, plus the
cheaper broadcast) and close to FedAvg; we also require the measured
extra time of rFedAvg+ over FedAvg to stay modest.
"""

from benchmarks.common import (
    DEVICE_CLIENTS,
    IMAGE_ALGORITHMS,
    banner,
    device_config,
    image_fed_builder,
    run_comparison,
    report,
)
from repro.experiments.report import display_name, format_rounds_table

SUBSET = {k: IMAGE_ALGORITHMS[k] for k in ["fedavg", "scaffold", "rfedavg", "rfedavg+"]}


def _run(dataset: str):
    return run_comparison(
        SUBSET,
        image_fed_builder(dataset, DEVICE_CLIENTS, 0.0),
        device_config(rounds=50, eval_every=1),
        repeats=1,
    )


def test_fig10a_rounds_to_accuracy_mnist(once):
    results = once(_run, "synth_mnist")
    thresholds = [0.5, 0.6, 0.7]
    banner("Fig. 10(a) — minimal rounds to reach accuracy, synth-MNIST")
    report(format_rounds_table(results, thresholds))
    r_plus = results["rfedavg+"].rounds_to_reach(0.5)
    r_avg = results["fedavg"].rounds_to_reach(0.5)
    assert r_plus is not None
    if r_avg is not None:
        assert r_plus <= r_avg + 10


def test_fig10b_rounds_to_accuracy_cifar(once):
    results = once(_run, "synth_cifar")
    thresholds = [0.3, 0.4, 0.5]
    banner("Fig. 10(b) — minimal rounds to reach accuracy, synth-CIFAR")
    report(format_rounds_table(results, thresholds))
    assert results["rfedavg+"].rounds_to_reach(0.3) is not None


def test_fig10cd_time_per_round(once):
    """The paper's ~2x per-round time gap (rFedAvg vs rFedAvg+) comes
    from the regularizer itself: rFedAvg evaluates distances against
    N-1 peer deltas at every local step (O(N d) extra work) while
    rFedAvg+ uses one leave-one-out average (O(d)).  At our reduced
    scale (N=50, d=32) that cost hides inside a fast simulation, so the
    bench checks two things: (i) measured per-round compute is in the
    same ballpark for all methods at simulation scale, and (ii) at the
    paper's dimensions (100 participating clients, d=512) the measured
    per-step regularizer cost of the pairwise form is a large multiple
    of the leave-one-out form — the source of the paper's 2x figure.
    """
    import time

    import numpy as np

    from repro.core.regularizer import DistributionRegularizer

    def run_all():
        mnist = _run("synth_mnist")
        # Microbenchmark at paper dims: N-1 = 99 peers, d = 512, B = 32.
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(32, 512))
        peers = rng.normal(size=(99, 512))
        target = peers.mean(axis=0)
        pairwise = DistributionRegularizer(1e-4, mode="pairwise")
        loo = DistributionRegularizer(1e-4, mode="loo")
        reps = 400
        t0 = time.perf_counter()
        for _ in range(reps):
            pairwise.evaluate(feats, peers)
        t_pair = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(reps):
            loo.evaluate(feats, target)
        t_loo = time.perf_counter() - t0
        return mnist, t_pair / reps, t_loo / reps

    mnist, per_step_pairwise, per_step_loo = once(run_all)
    banner("Fig. 10(c)/(d) — per-round compute (ms) and regularizer step cost")
    compute = {n: 1000 * r.mean_round_time() for n, r in mnist.items()}
    for name, ms in compute.items():
        report(f"{display_name(name):10s} compute/round {ms:8.1f} ms")
    report(
        f"regularizer step cost at paper dims (N=100, d=512): "
        f"pairwise {1e6 * per_step_pairwise:.1f} us vs "
        f"leave-one-out {1e6 * per_step_loo:.1f} us "
        f"({per_step_pairwise / per_step_loo:.1f}x)"
    )
    # (i) simulation-scale compute parity (regularizer cost is small here).
    assert compute["rfedavg+"] <= compute["rfedavg"] * 1.5
    assert compute["rfedavg+"] <= compute["fedavg"] * 3.0
    # (ii) the paper-scale source of the 2x: pairwise costs a large
    # multiple of leave-one-out per local step.
    assert per_step_pairwise > 3.0 * per_step_loo
