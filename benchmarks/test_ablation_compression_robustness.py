"""Extension ablations: upload compression and failure robustness.

Not a paper table — these cover the extension features DESIGN.md lists
(compression from the paper's related-work menu; the dropout/outlier
limitation its Sec. IV-C remarks acknowledge):

1. accuracy-vs-uplink tradeoff of top-k / quantized uploads combined
   with rFedAvg+ (driven through ``FLConfig.compression`` spec strings,
   with error feedback on by default — see docs/compression.md);
2. graceful degradation under client dropout;
3. the byzantine-outlier failure mode the paper's remarks warn about.
"""

from benchmarks.common import LAMBDA, banner, image_fed_builder, model_builder, silo_config, report
from repro.algorithms import FedAvg, RFedAvgPlus
from repro.fl.faults import FaultModel
from repro.fl.trainer import run_federated


def _run_once(alg, fed, config):
    history = run_federated(alg, fed, model_builder("mlp")(fed, 0), config)
    return history.tail_mean_accuracy(3), alg.ledger.total("up:model")


def test_ablation_compression_tradeoff(once):
    def run():
        fed = image_fed_builder("synth_cifar", 10, 0.0)(0)

        def config(**overrides):
            return silo_config(rounds=40, eval_every=4, **overrides)

        rows = {}
        rows["dense"] = _run_once(RFedAvgPlus(lam=LAMBDA), fed, config())
        rows["top-25%"] = _run_once(
            RFedAvgPlus(lam=LAMBDA), fed, config(compression="topk:0.25")
        )
        rows["top-5%"] = _run_once(
            RFedAvgPlus(lam=LAMBDA), fed, config(compression="topk:0.05")
        )
        rows["top-5%/no-ef"] = _run_once(
            RFedAvgPlus(lam=LAMBDA), fed,
            config(compression="topk:0.05", error_feedback=False),
        )
        rows["8-bit"] = _run_once(
            RFedAvgPlus(lam=LAMBDA), fed, config(compression="quantize:8")
        )
        return rows

    rows = once(run)
    banner("Ablation — rFedAvg+ with compressed uploads (synth-CIFAR Sim 0%)")
    for name, (acc, up_bytes) in rows.items():
        report(f"{name:12s} acc={acc:.4f}  uplink={up_bytes:,} B")
    dense_acc, dense_bytes = rows["dense"]
    # 8-bit quantization is nearly free in accuracy, far cheaper on the wire.
    assert rows["8-bit"][0] > dense_acc - 0.08
    assert rows["8-bit"][1] < 0.3 * dense_bytes
    # Moderate sparsification stays in the game at a fraction of the bytes.
    assert rows["top-25%"][1] < 0.55 * dense_bytes
    assert rows["top-25%"][0] > dense_acc - 0.15
    # Error feedback pays its way at heavy sparsity: same bytes, no worse
    # accuracy than the open-loop run.
    assert rows["top-5%"][1] == rows["top-5%/no-ef"][1]
    assert rows["top-5%"][0] >= rows["top-5%/no-ef"][0] - 0.02


def test_ablation_dropout_robustness(once):
    def run():
        fed = image_fed_builder("synth_mnist", 10, 0.0)(0)
        config = silo_config(rounds=40, eval_every=4)
        accs = {}
        for prob in [0.0, 0.3]:
            alg = RFedAvgPlus(lam=LAMBDA)
            if prob:
                alg = alg.with_faults(FaultModel(dropout_prob=prob, seed=1))
            accs[prob], _ = _run_once(alg, fed, config)
        return accs

    accs = once(run)
    banner("Ablation — rFedAvg+ under client dropout")
    for prob, acc in accs.items():
        report(f"dropout={prob}: acc={acc:.4f}")
    # 30% churn costs some accuracy but must not collapse the run.
    assert accs[0.3] > 0.5 * accs[0.0]


def test_ablation_byzantine_limitation(once):
    """The paper's acknowledged limitation: regularization does not
    defend against outlier clients.  A sign-flip attacker hurts
    rFedAvg+ about as much as FedAvg — there is no implicit robustness."""

    def run():
        fed = image_fed_builder("synth_mnist", 10, 0.0)(0)
        config = silo_config(rounds=30, eval_every=5, lr=0.2)
        out = {}
        for label, alg in [
            ("fedavg-clean", FedAvg()),
            ("fedavg-attacked", FedAvg().with_faults(
                FaultModel(byzantine_clients=(0,), corruption_scale=3.0, seed=2))),
            ("rfedavg+-clean", RFedAvgPlus(lam=LAMBDA)),
            ("rfedavg+-attacked", RFedAvgPlus(lam=LAMBDA).with_faults(
                FaultModel(byzantine_clients=(0,), corruption_scale=3.0, seed=2))),
        ]:
            out[label], _ = _run_once(alg, fed, config)
        return out

    out = once(run)
    banner("Ablation — byzantine outlier (the paper's stated limitation)")
    for label, acc in out.items():
        report(f"{label:20s} acc={acc:.4f}")
    assert out["fedavg-attacked"] < out["fedavg-clean"]
    assert out["rfedavg+-attacked"] < out["rfedavg+-clean"]
