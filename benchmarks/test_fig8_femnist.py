"""Figure 8 — FEMNIST curves with 100/500 clients, low/high cost (scaled).

Paper: low cost = SR 0.1, E 10; high cost = SR 0.2, E 20; 80 rounds;
100 and 500 writers.  Here: 30/60 writers, 25 rounds, MLP.  Expected
shape: rFedAvg leads or ties; the high-cost setting converges in fewer
rounds than the low-cost one.
"""

from benchmarks.common import banner, femnist_fed_builder, run_comparison, report
from repro.experiments.report import format_accuracy_table
from repro.fl.config import FLConfig

ALGORITHMS = {
    "fedavg": {},
    "scaffold": {"eta_g": 1.0},
    "rfedavg": {"lam": 1e-3},
    "rfedavg+": {"lam": 1e-3},
}


def _config(low_cost: bool):
    if low_cost:
        return FLConfig(rounds=25, local_steps=10, batch_size=16, sample_ratio=0.1,
                        lr=0.3, eval_every=5)
    return FLConfig(rounds=25, local_steps=20, batch_size=16, sample_ratio=0.2,
                    lr=0.3, eval_every=5)


def test_fig8_writer_and_cost_grid(once):
    def run_grid():
        columns = {}
        for writers, wl in [(30, "100c"), (60, "500c")]:
            for low, cl in [(True, "low"), (False, "high")]:
                columns[f"{wl}/{cl}"] = run_comparison(
                    ALGORITHMS,
                    femnist_fed_builder(writers),
                    _config(low),
                    repeats=1,
                )
        return columns

    columns = once(run_grid)
    banner("Fig. 8 (scaled) — FEMNIST accuracy, writers x cost grid")
    report(format_accuracy_table(columns))

    for label, results in columns.items():
        acc = {n: r.accuracy_mean_std()[0] for n, r in results.items()}
        # Everyone learns beyond chance (10 classes).
        assert acc["fedavg"] > 0.2, label
    # High-cost (more local work + participation) >= low-cost for FedAvg.
    acc_low = columns["100c/low"]["fedavg"].accuracy_mean_std()[0]
    acc_high = columns["100c/high"]["fedavg"].accuracy_mean_std()[0]
    assert acc_high >= acc_low - 0.05
