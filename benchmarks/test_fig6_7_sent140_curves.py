"""Figures 6 and 7 — Sent140 curves with the LSTM + RMSProp (scaled).

Paper: 2-layer LSTM (256-d features), RMSProp lr=0.01, batch 10,
30 rounds; natural non-IID (by user) vs IID (shuffled).  Here: the same
architecture at scale 0.15 with 20 users.  Expected shape: the
regularized methods lead on naturally non-IID data; FedAvg closes the
gap on IID.  (The paper also observes FedProx/q-FedAvg struggling with
RMSProp — their corrections assume plain SGD.)
"""

from benchmarks.common import (
    SENT140_ALGORITHMS,
    banner,
    run_comparison,
    sent140_fed_builder,
    report,
)
from repro.experiments.report import display_name, format_accuracy_table
from repro.fl.config import FLConfig


def _config():
    return FLConfig(
        rounds=12,
        local_steps=5,
        batch_size=10,
        sample_ratio=1.0,
        optimizer="rmsprop",
        lr=0.01,
        eval_every=2,
    )


def test_fig6_7_sent140(once):
    def run_both():
        non_iid = run_comparison(
            SENT140_ALGORITHMS,
            sent140_fed_builder(num_users=20, iid=False),
            _config(),
            model_name="lstm",
            scale=0.15,
            repeats=1,
            config_overrides={},
        )
        iid = run_comparison(
            SENT140_ALGORITHMS,
            sent140_fed_builder(num_users=20, iid=True),
            _config(),
            model_name="lstm",
            scale=0.15,
            repeats=1,
            config_overrides={},
        )
        return non_iid, iid

    non_iid, iid = once(run_both)
    banner("Fig. 6/7 + Table I Sent140 columns (scaled, LSTM + RMSProp)")
    report(format_accuracy_table({"Non-IID": non_iid, "IID": iid}))
    report()
    for name, result in non_iid.items():
        curve = result.mean_accuracy_curve()
        tail = ", ".join(f"{v:.3f}" for v in curve[:, 1])
        report(f"{display_name(name):12s} non-IID curve: {tail}")

    acc = {n: r.accuracy_mean_std()[0] for n, r in non_iid.items()}
    # All methods learn the binary task beyond chance with RMSProp.
    assert acc["rfedavg+"] > 0.5
    assert acc["fedavg"] > 0.5
    # The regularized methods are competitive with FedAvg (paper: lead by ~3%).
    assert max(acc["rfedavg"], acc["rfedavg+"]) >= acc["fedavg"] - 0.05
