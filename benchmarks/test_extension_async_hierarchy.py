"""Extension benches: asynchronous FL and hierarchical FL.

Neither regime appears in the paper; both are standard deployments its
method would meet in practice.  The async bench shows the staleness
discount containing stragglers; the hierarchy bench shows region models
drifting between cloud syncs — the flat non-IID problem recursing one
level up.

Both benches run through the first-class execution modes:
``FLConfig(execution="async", buffer_size=1)`` reproduces the
one-update-per-arrival FedAsync server, and
``FLConfig(topology="hier:R:P")`` runs the region-parallel
hierarchical engine (the legacy eager ``run_hierarchical`` /
``run_async_federated`` APIs are deprecated).
"""

import numpy as np

from benchmarks.common import banner, image_fed_builder, model_builder, report
from repro.algorithms import make_algorithm
from repro.fl.config import FLConfig
from repro.fl.runtime import TraceRuntime
from repro.fl.trainer import run_federated


def _edge_divergence(region_params):
    stacked = np.stack(region_params)
    return float(np.linalg.norm(stacked - stacked.mean(axis=0), axis=1).mean())


def test_extension_async_staleness_discount(once):
    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        model_fn = model_builder("mlp")(fed, 0)
        rng = np.random.default_rng(1)
        speeds = np.concatenate([[1.0, 1.0], rng.uniform(6.0, 12.0, size=6)])
        runtime = TraceRuntime(speeds)
        out = {}
        for exponent in [0.0, 1.0]:
            config = FLConfig(
                rounds=120, local_steps=5, batch_size=32, lr=0.3,
                execution="async", buffer_size=1,
                staleness_exponent=exponent, eval_every=20, seed=0,
            )
            history = run_federated(
                make_algorithm("fedavg"), fed, model_fn, config, runtime=runtime
            )
            async_history = history.async_history
            out[exponent] = (
                history.final_accuracy,
                int(async_history.staleness_values().max()),
                async_history.client_update_counts(8),
            )
        return out

    out = once(run)
    banner("Extension — async FL: staleness discount (exponent 0 vs 1)")
    for exponent, (acc, max_stale, counts) in out.items():
        report(
            f"exponent={exponent}: final acc {acc:.4f}, max staleness {max_stale}, "
            f"updates/client {counts.tolist()}"
        )
    # Stale arrivals exist, so the discount has something to act on.
    assert all(max_stale > 0 for _a, max_stale, _c in out.values())
    assert all(np.isfinite(acc) for acc, _s, _c in out.values())
    # The discount contains the stragglers' stale drag: with it the run
    # trains to something useful, without it the model is dragged around.
    assert out[1.0][0] > 0.2
    assert out[1.0][0] > out[0.0][0]


def test_extension_hierarchy_edge_drift(once):
    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        config = FLConfig(
            rounds=12, local_steps=5, batch_size=32, lr=0.3, seed=0,
            topology="hier:2:4", eval_every=4,
        )
        records = []

        def observe(info):
            records.append(
                {
                    "round": info["round"],
                    "cloud_sync": info["cloud_sync"],
                    "edge_divergence": _edge_divergence(info["region_params"]),
                    "train_loss": info["train_loss"],
                }
            )

        history = run_federated(
            make_algorithm("fedavg"), fed, model_builder("mlp")(fed, 0), config,
            region_observer=observe,
        )
        return records, history.final_accuracy

    records, final_accuracy = once(run)
    banner("Extension — hierarchical FL: region divergence between cloud syncs")
    for record in records:
        marker = "  <- cloud sync" if record["cloud_sync"] else ""
        report(
            f"round {record['round']:3d}  divergence {record['edge_divergence']:.4f}"
            f"  loss {record['train_loss']:.4f}{marker}"
        )
    report(f"final accuracy: {final_accuracy:.4f}")
    # Divergence is zeroed at every cloud sync and positive in between —
    # the flat non-IID drift recursing at the region level.
    sync_rounds = [r["round"] for r in records if r["cloud_sync"]]
    assert sync_rounds, "no cloud sync in 12 rounds at period 4"
    for record in records:
        if record["cloud_sync"]:
            assert record["edge_divergence"] < 1e-9
    between = [r["edge_divergence"] for r in records if not r["cloud_sync"]]
    assert max(between) > 0
    assert final_accuracy > 0.2
