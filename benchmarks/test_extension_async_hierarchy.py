"""Extension benches: asynchronous FL and hierarchical FL.

Neither regime appears in the paper; both are standard deployments its
method would meet in practice.  The async bench shows the staleness
discount containing stragglers; the hierarchy bench shows edge models
drifting between cloud syncs — the flat non-IID problem recursing one
level up.
"""

import numpy as np

from benchmarks.common import banner, image_fed_builder, model_builder, report
from repro.fl.async_sim import AsyncConfig, run_async_federated
from repro.fl.config import FLConfig
from repro.fl.hierarchy import HierarchyConfig, run_hierarchical


def test_extension_async_staleness_discount(once):
    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        model_fn = model_builder("mlp")(fed, 0)
        rng = np.random.default_rng(1)
        speeds = np.concatenate([[1.0, 1.0], rng.uniform(6.0, 12.0, size=6)])
        out = {}
        for exponent in [0.0, 1.0]:
            config = AsyncConfig(
                max_updates=120, local_steps=5, batch_size=32, lr=0.3,
                alpha=0.6, staleness_exponent=exponent, eval_every=20,
            )
            history = run_async_federated(fed, model_fn, speeds, config)
            out[exponent] = (
                history.final_accuracy,
                int(history.staleness_values().max()),
                history.client_update_counts(8),
            )
        return out

    out = once(run)
    banner("Extension — async FL: staleness discount (exponent 0 vs 1)")
    for exponent, (acc, max_stale, counts) in out.items():
        report(
            f"exponent={exponent}: final acc {acc:.4f}, max staleness {max_stale}, "
            f"updates/client {counts.tolist()}"
        )
    # Fast clients dominate the update count in both regimes.
    for _exp, (_acc, _stale, counts) in out.items():
        assert counts[:2].sum() > counts[2:].sum()
    # Both regimes train to something finite and useful.
    assert all(np.isfinite(acc) and acc > 0.2 for acc, _s, _c in out.values())


def test_extension_hierarchy_edge_drift(once):
    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        config = FLConfig(rounds=1, local_steps=5, batch_size=32, lr=0.3, seed=0)
        history = run_hierarchical(
            fed, model_builder("mlp")(fed, 0), config,
            HierarchyConfig(edge_rounds=12, edge_period=4), num_edges=2,
        )
        return history

    history = once(run)
    banner("Extension — hierarchical FL: edge divergence between cloud syncs")
    divergence = history.edge_divergence_series()
    for record in history.records:
        marker = "  <- cloud sync" if record["cloud_sync"] else ""
        report(
            f"edge round {record['round']:3d}  divergence {record['edge_divergence']:.4f}"
            f"  loss {record['train_loss']:.4f}{marker}"
        )
    report(f"final accuracy: {history.final_accuracy:.4f}")
    # Divergence is zeroed at every cloud sync and positive in between —
    # the flat non-IID drift recursing at the edge level.
    for cloud_round in history.cloud_rounds():
        assert divergence[cloud_round] < 1e-9
    between = [d for i, d in enumerate(divergence) if i not in history.cloud_rounds()]
    assert max(between) > 0
    assert history.final_accuracy > 0.2
