"""Ablations for the design choices called out in DESIGN.md.

1. Leave-one-out vs pairwise regularizer form: same gradients, so the
   trajectories should match closely when fed the same delta state; the
   payloads differ by a factor of N.
2. Delayed vs exact (up-to-date) mapping: rFedAvg+ must track the exact
   reference's accuracy at a fraction of its delta traffic.
3. Linear vs RBF-kernel MMD as the measured discrepancy: both must agree
   that training with the regularizer reduced cross-client discrepancy
   relative to FedAvg.
"""

import numpy as np

from benchmarks.common import LAMBDA, banner, image_fed_builder, model_builder, silo_config, report
from repro.algorithms import FedAvg, RFedAvg, RFedAvgExact, RFedAvgPlus
from repro.core.mmd import linear_mmd, rbf_mmd
from repro.fl.trainer import run_federated
from repro.nn.serialization import set_flat_params


def test_ablation_delayed_vs_exact_mapping(once):
    def run():
        fed = image_fed_builder("synth_cifar", 8, 0.0)(0)
        config = silo_config(rounds=30, eval_every=5)
        out = {}
        for name, alg in [
            ("rfedavg+", RFedAvgPlus(lam=LAMBDA)),
            ("exact", RFedAvgExact(lam=LAMBDA)),
        ]:
            history = run_federated(alg, fed, model_builder("mlp")(fed, 0), config)
            out[name] = (history.tail_mean_accuracy(3), alg.ledger.total("up:delta"))
        return out

    out = once(run)
    banner("Ablation — delayed (rFedAvg+) vs exact up-to-date mapping")
    for name, (acc, delta_bytes) in out.items():
        report(f"{name:10s} acc={acc:.4f}  uplink delta={delta_bytes:,} B")
    acc_plus, bytes_plus = out["rfedavg+"]
    acc_exact, bytes_exact = out["exact"]
    # Accuracy parity within a couple points; traffic at least 5x lower.
    assert acc_plus > acc_exact - 0.05
    assert bytes_exact > 5 * bytes_plus


def test_ablation_pairwise_vs_loo_accuracy_parity(once):
    def run():
        fed = image_fed_builder("synth_cifar", 8, 0.0)(0)
        config = silo_config(rounds=30, eval_every=5)
        accs = {}
        for name, alg in [
            ("pairwise (rFedAvg)", RFedAvg(lam=LAMBDA)),
            ("loo (rFedAvg+)", RFedAvgPlus(lam=LAMBDA)),
        ]:
            history = run_federated(alg, fed, model_builder("mlp")(fed, 0), config)
            accs[name] = history.tail_mean_accuracy(3)
        return accs

    accs = once(run)
    banner("Ablation — pairwise r_k vs leave-one-out r~_k")
    for name, acc in accs.items():
        report(f"{name:20s} acc={acc:.4f}")
    values = list(accs.values())
    assert abs(values[0] - values[1]) < 0.08  # same-gradient forms agree


def test_ablation_regularizer_reduces_mmd_under_both_kernels(once):
    """The regularizer's purpose: after training, cross-client feature
    discrepancy (by linear AND RBF MMD) is lower than under FedAvg."""

    def run():
        fed = image_fed_builder("synth_cifar", 6, 0.0)(0)
        config = silo_config(rounds=30, eval_every=30)
        out = {}
        for name, alg in [("fedavg", FedAvg()), ("rfedavg+", RFedAvgPlus(lam=1e-2))]:
            model_fn = model_builder("mlp")(fed, 0)
            run_federated(alg, fed, model_fn, config)
            model = model_fn()
            set_flat_params(model, alg.global_params)
            model.eval()
            feats = [model.features.forward(shard.x) for shard in fed.clients]
            linear = np.mean([
                linear_mmd(feats[i], feats[j])
                for i in range(len(feats))
                for j in range(i + 1, len(feats))
            ])
            rbf = np.mean([
                rbf_mmd(feats[i][:60], feats[j][:60])
                for i in range(len(feats))
                for j in range(i + 1, len(feats))
            ])
            out[name] = (float(linear), float(rbf))
        return out

    out = once(run)
    banner("Ablation — cross-client MMD after training (linear / RBF)")
    for name, (linear, rbf) in out.items():
        report(f"{name:10s} linear={linear:.4f}  rbf={rbf:.4f}")
    assert out["rfedavg+"][0] < out["fedavg"][0]  # linear MMD reduced
