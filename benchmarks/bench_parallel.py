"""Parallel client-execution benchmark: 16-client cross-device round.

Measures the round throughput of the process-pool engine against the
serial reference on a CNN cross-device round, in two scenarios:

* **cpu-bound** — local training is the only cost.  The speedup here is
  bounded by the host's physical cores; on a single-core host the pool
  can only add overhead, which the result records honestly.
* **device-latency** — each client additionally carries a fixed
  simulated device latency (stragglers, radio wake-up, on-device
  epochs), the regime cross-device federations actually live in.  The
  latencies of clients on different workers overlap, so the pool wins
  regardless of host core count; this is the scenario the >= 2x
  acceptance target refers to.

Both scenarios verify bit-identical results before reporting timings.
Run directly (not under pytest-benchmark):

    PYTHONPATH=src python benchmarks/bench_parallel.py

Writes ``BENCH_parallel.json`` next to the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms import FedAvg
from repro.experiments import build_image_federation, default_model_fn
from repro.fl.config import FLConfig
from repro.fl.parallel import ParallelExecutor, SerialExecutor
from repro.fl.trainer import run_federated
from repro.nn.serialization import num_params

CLIENTS = 16
WORKERS = 4
ROUNDS = 3
DEVICE_LATENCY_SEC = 0.35  # per-client simulated device time


class LatencyFedAvg(FedAvg):
    """FedAvg whose clients carry a fixed simulated device latency."""

    name = "fedavg"

    def __init__(self, latency: float) -> None:
        super().__init__()
        self.latency = latency

    def _client_update(self, round_idx, client_id):
        time.sleep(self.latency)
        return super()._client_update(round_idx, client_id)


def _build():
    fed = build_image_federation(
        "synth_cifar", num_clients=CLIENTS, similarity=0.5,
        num_train=1600, num_test=200, seed=0,
    )
    model_fn = default_model_fn("cnn", fed.spec, seed=0, scale=0.15)
    config = FLConfig(
        rounds=ROUNDS, local_steps=10, batch_size=32, lr=0.1,
        eval_every=ROUNDS, seed=0,
    )
    return fed, model_fn, config


def _timed_run(make_algorithm, executor, fed, model_fn, config):
    algorithm = make_algorithm().with_executor(executor)
    started = time.perf_counter()
    run_federated(algorithm, fed, model_fn, config)
    return algorithm, time.perf_counter() - started


def _scenario(
    name: str, make_algorithm, fed, model_fn, config, transport: str = "wire",
    serial_baseline=None,
) -> dict:
    # Transports compared against each other share one serial baseline
    # so their ratios are not skewed by run-to-run host noise.
    if serial_baseline is None:
        serial_baseline = _timed_run(
            make_algorithm, SerialExecutor(), fed, model_fn, config
        )
    serial_alg, serial_sec = serial_baseline
    parallel_executor = ParallelExecutor(WORKERS, transport=transport)
    parallel_alg, parallel_sec = _timed_run(
        make_algorithm, parallel_executor, fed, model_fn, config
    )
    identical = bool(
        np.array_equal(serial_alg.global_params, parallel_alg.global_params)
    )
    speedup = serial_sec / parallel_sec
    print(
        f"{name:24s} serial {serial_sec:7.2f}s   parallel({WORKERS},{transport}) "
        f"{parallel_sec:7.2f}s   speedup {speedup:5.2f}x   "
        f"bit-identical={identical} degraded={parallel_executor.degraded}"
    )
    record = {
        "transport": transport,
        "serial_seconds": round(serial_sec, 4),
        "parallel_seconds": round(parallel_sec, 4),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
        "degraded": parallel_executor.degraded,
    }
    if speedup < 1.0:
        record["interpretation"] = (
            f"regression on this host ({os.cpu_count()} core(s)): pool "
            "overhead exceeds the parallel gain for CPU-bound training; "
            "use executor='serial' here. The wire transport narrows the "
            "gap vs the per-round-fork pickle engine (see cpu_bound_pickle) "
            "but cannot beat serial without real cores. Traced runs emit "
            "the same hint as a parallel_hint span and a "
            "parallel.slowdown_rounds counter (repro.obs)."
        )
    return record


def main() -> int:
    fed, model_fn, config = _build()
    model_params = num_params(model_fn())
    cpu_count = os.cpu_count()
    print(
        f"{CLIENTS}-client cross-device round, CNN ({model_params} params), "
        f"{ROUNDS} rounds, E={config.local_steps}, host cores={cpu_count}"
    )

    cpu_serial = _timed_run(FedAvg, SerialExecutor(), fed, model_fn, config)
    results = {
        "clients": CLIENTS,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "local_steps": config.local_steps,
        "model": "cnn(scale=0.15)",
        "model_params": model_params,
        "cpu_count": cpu_count,
        "device_latency_sec": DEVICE_LATENCY_SEC,
        "scenarios": {
            "cpu_bound": _scenario(
                "cpu-bound (wire)", FedAvg, fed, model_fn, config,
                serial_baseline=cpu_serial,
            ),
            "cpu_bound_pickle": _scenario(
                "cpu-bound (pickle)", FedAvg, fed, model_fn, config,
                transport="pickle", serial_baseline=cpu_serial,
            ),
            "device_latency": _scenario(
                "device-latency",
                lambda: LatencyFedAvg(DEVICE_LATENCY_SEC),
                fed,
                model_fn,
                config,
            ),
        },
    }
    results["speedup_target_met"] = (
        results["scenarios"]["device_latency"]["speedup"] >= 2.0
    )

    out_path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if results["speedup_target_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
