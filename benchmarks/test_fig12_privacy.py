"""Figure 12 — privacy evaluation (scaled).

Paper: Gaussian noise on delta with sigma2 in {1, 5, 10, 20}; curves
with sigma2 <= 5 nearly overlap the noiseless run, large noise degrades.
Here: rFedAvg+ on non-IID synth-CIFAR with the same mechanism.  The
noise std scales as sigma * C0 / n_k, so to see degradation at the
paper's sigma range we also test an aggressive clip/sigma pair.
"""

from benchmarks.common import LAMBDA, banner, image_fed_builder, model_builder, report
from repro.algorithms import RFedAvgPlus
from repro.core.privacy import GaussianDeltaMechanism
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated


def _config():
    return FLConfig(rounds=30, local_steps=5, batch_size=32, sample_ratio=1.0,
                    lr=0.3, eval_every=5, seed=0)


def test_fig12_noise_sweep(once):
    sigmas = [0.0, 1.0, 5.0, 20.0, 200.0]

    def run():
        fed = image_fed_builder("synth_cifar", 10, 0.0)(0)
        accs = {}
        for sigma in sigmas:
            privacy = GaussianDeltaMechanism(sigma=sigma, clip_norm=5.0, seed=1)
            alg = RFedAvgPlus(lam=LAMBDA, privacy=privacy)
            history = run_federated(alg, fed, model_builder("mlp")(fed, 0), _config())
            accs[sigma] = history.tail_mean_accuracy(3)
        return accs

    accs = once(run)
    banner("Fig. 12 — accuracy vs delta-noise sigma2 (synth-CIFAR Sim 0%)")
    for sigma, acc in accs.items():
        report(f"sigma2={sigma}: {acc:.4f}")
    # Paper shape: moderate noise is nearly free...
    assert abs(accs[1.0] - accs[0.0]) < 0.08
    assert abs(accs[5.0] - accs[0.0]) < 0.10
    # ...massive noise costs accuracy relative to the moderate regime.
    baseline = max(accs[0.0], accs[1.0], accs[5.0])
    assert accs[200.0] <= baseline + 0.02
