"""Figure 11 — fairness evaluation (scaled).

Paper: scatter of per-client accuracies for FedAvg vs rFedAvg+ on
MNIST and CIFAR; the worst clients (red circles) sit higher under
rFedAvg+.  Here: per-client accuracy of the final global model on each
client's shard; we print the distribution summary and check the
worst-k statistic.
"""

from benchmarks.common import (
    LAMBDA,
    SILO_CLIENTS,
    banner,
    image_fed_builder,
    run_comparison,
    silo_config,
    report,
)
from repro.analysis.fairness import fairness_report

ALGORITHMS = {"fedavg": {}, "rfedavg+": {"lam": LAMBDA}}


def _run(dataset):
    return run_comparison(
        ALGORITHMS,
        image_fed_builder(dataset, SILO_CLIENTS, 0.0),
        silo_config(rounds=50, eval_every=10),
        repeats=2,
        eval_per_client=True,
    )


def _mean_report(result, worst_k=3):
    reports = [
        fairness_report(h.per_client_accuracy, worst_k=worst_k)
        for h in result.histories
    ]
    keys = reports[0].keys()
    return {k: sum(r[k] for r in reports) / len(reports) for k in keys}


def test_fig11_fairness_mnist_cifar(once):
    def run_both():
        return _run("synth_mnist"), _run("synth_cifar")

    mnist, cifar = once(run_both)
    for label, results in [("MNIST", mnist), ("CIFAR", cifar)]:
        banner(f"Fig. 11 — per-client fairness, synth-{label} Sim 0%")
        for name, result in results.items():
            stats = _mean_report(result)
            pretty = {k: round(v, 4) for k, v in stats.items()}
            report(f"{name:10s} {pretty}")
        avg = _mean_report(results["fedavg"])
        plus = _mean_report(results["rfedavg+"])
        # Paper shape: the worst clients are served no worse by rFedAvg+.
        assert plus["worst3_mean"] >= avg["worst3_mean"] - 0.05, label
