"""Theorems 1 and 2 — convergence on a strongly convex objective.

The theory says: with the inverse-decay schedule eta_t = 2/(mu(gamma+t)),
both rFedAvg and rFedAvg+ converge at O(1/T) like FedAvg but with larger
constants, and rFedAvg+'s constant C2 is strictly below rFedAvg's C3.
We verify (a) the analytic constant ordering across a grid, (b) the
O(1/T)-shaped decay of the measured optimality gap for all three
algorithms on L2-regularized multinomial logistic regression (strongly
convex), and (c) the bound actually dominating the measured gap.
"""

import numpy as np

from benchmarks.common import banner, image_fed_builder, model_builder, report
from repro.algorithms import FedAvg, RFedAvg, RFedAvgPlus
from repro.analysis.convergence import (
    ProblemConstants,
    constant_c2,
    constant_c3,
    theory_schedule,
)
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated


def _constants():
    return ProblemConstants(
        smoothness=2.0,
        strong_convexity=0.1,
        grad_bound=1.0,
        grad_bound_reg=1.2,
        phi_grad_bound=1.0,
        diameter=2.0,
        local_steps=5,
        num_clients=8,
        lam=1e-3,
    )


def test_constant_ordering_grid(once):
    def check():
        rows = []
        for e_steps in [1, 5, 20]:
            for n in [2, 10, 100]:
                for lam in [0.0, 1e-3, 1.0]:
                    constants = ProblemConstants(
                        smoothness=2.0, strong_convexity=0.1,
                        grad_bound=1.0, grad_bound_reg=1.5,
                        phi_grad_bound=1.0, diameter=2.0,
                        local_steps=e_steps, num_clients=n, lam=lam,
                    )
                    c2, c3 = constant_c2(constants), constant_c3(constants)
                    rows.append((e_steps, n, lam, c2, c3))
        return rows

    rows = once(check)
    banner("Thm. 1/2 — C2 vs C3 across (E, N, lambda)")
    for e_steps, n, lam, c2, c3 in rows:
        report(f"E={e_steps:3d} N={n:4d} lam={lam:6.0e}  C2={c2:12.1f}  C3={c3:12.1f}")
        assert c2 < c3  # the paper's formal rFedAvg+ advantage


def test_empirical_one_over_t_decay(once):
    """Measured optimality gap F(w_t) - F* decays ~1/t for all three
    algorithms on the strongly convex model with the theory schedule."""

    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        constants = _constants()
        config = FLConfig(
            rounds=60, local_steps=5, batch_size=64, sample_ratio=1.0,
            lr_schedule=theory_schedule(constants), eval_every=2, seed=0,
        )
        losses = {}
        for name, alg in [
            ("fedavg", FedAvg()),
            ("rfedavg", RFedAvg(lam=1e-3)),
            ("rfedavg+", RFedAvgPlus(lam=1e-3)),
        ]:
            history = run_federated(alg, fed, model_builder("logistic")(fed, 0), config)
            losses[name] = history.test_losses()
        return losses

    losses = once(run)
    banner("Thm. 1/2 — strongly convex optimality-gap decay")
    for name, curve in losses.items():
        early = curve[: len(curve) // 3, 1].mean()
        late = curve[-len(curve) // 3 :, 1].mean()
        report(f"{name:10s} early loss {early:.4f} -> late loss {late:.4f}")
        assert late < early  # monotone-ish decay under the 1/t schedule
    # All three settle to comparable loss levels (same O(1/T) rate).
    finals = [curve[-1, 1] for curve in losses.values()]
    assert max(finals) < 2.0 * min(finals) + 0.1


def test_bound_dominates_measured_gap(once):
    """Theorem 1's RHS must upper-bound the measured F(w_t) - F* once
    constants are instantiated conservatively."""

    def run():
        fed = image_fed_builder("synth_mnist", 8, 0.0)(0)
        constants = _constants()
        config = FLConfig(
            rounds=40, local_steps=5, batch_size=64, sample_ratio=1.0,
            lr_schedule=theory_schedule(constants), eval_every=2, seed=0,
        )
        alg = RFedAvgPlus(lam=1e-3)
        history = run_federated(alg, fed, model_builder("logistic")(fed, 0), config)
        return history.test_losses(), constants

    curve, constants = once(run)
    from repro.analysis.convergence import theorem1_bound

    # Optimality gap proxy: loss minus the best loss seen (F* estimate).
    f_star = curve[:, 1].min()
    banner("Thm. 1 — bound vs measured gap (logistic model)")
    violations = 0
    for round_idx, loss in curve[2:]:
        t = int(round_idx) * constants.local_steps
        bound = theorem1_bound(t, constants, initial_gap=float(curve[0, 1]))
        gap = loss - f_star
        if gap > bound:
            violations += 1
    report(f"measured gaps exceeding the Thm.1 envelope: {violations}/{len(curve) - 2}")
    assert violations == 0
