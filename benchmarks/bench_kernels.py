"""Op-level kernel benchmark and float64 regression harness.

Times the hot forward/backward kernels (Conv2d, MaxPool2d, Dense,
LSTMCell, GRUCell, rbf_mmd) and two end-to-end training steps (the
paper's CNN and LSTM models) in three configurations:

* **reference float64** — the frozen pre-optimization kernels from
  :mod:`repro.nn.reference` (loop-based im2col, per-timestep recurrent
  GEMMs).  This is the "before" column.
* **optimized float64** — the shipped kernels under the default dtype
  policy.  Must be *bit-identical* to the reference: the harness checks
  ``np.array_equal`` on outputs and gradients and exits non-zero on any
  drift, which is what the CI smoke job enforces.
* **optimized float32** — the shipped kernels under
  ``set_default_dtype("float32")``, the speed configuration.

Writes ``BENCH_kernels.json`` at the repo root with per-op timings,
speedup fields, a per-layer profile of the CNN step (via
:class:`repro.obs.LayerProfiler`), and the acceptance flags::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full sizes
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick  # CI smoke

Exit status: 0 when every float64 equivalence check passes, 1 otherwise
(timing targets are recorded in the JSON but only enforced on full runs).
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro import nn
from repro.core.mmd import _pairwise_sq_dists, rbf_mmd
from repro.models.cnn import build_cnn
from repro.models.lstm import build_lstm_classifier
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.reference import as_reference
from repro.obs import LayerProfiler, time_op

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------
# timing helpers
# --------------------------------------------------------------------------

def _timings(build, x, grad, *, repeats: int) -> tuple[dict, np.ndarray, np.ndarray]:
    """Forward/backward best-of timings plus (output, grad_x) for checks."""
    module = build()
    out = module.forward(x)
    module.zero_grad()
    gx = module.backward(grad)
    fwd = time_op(lambda: module.forward(x), repeats=repeats)
    bwd = time_op(lambda: module.backward(grad), repeats=repeats)
    return {"forward_sec": fwd, "backward_sec": bwd}, out, gx


def _op_record(name: str, build, make_x, grad_of, *, repeats: int) -> dict:
    """Benchmark one module op in the three configurations."""
    x64 = make_x(np.float64)
    g64 = grad_of(x64, np.float64)

    opt64, out_opt, gx_opt = _timings(build, x64, g64, repeats=repeats)

    ref64, out_ref, gx_ref = _timings(
        lambda: as_reference(build()), x64, g64, repeats=repeats
    )
    identical = bool(
        np.array_equal(out_opt, out_ref) and np.array_equal(gx_opt, gx_ref)
    )

    with nn.default_dtype("float32"):
        x32 = make_x(np.float32)
        g32 = grad_of(x32, np.float32)
        opt32, out32, _ = _timings(build, x32, g32, repeats=repeats)
    f32_ok = bool(out32.dtype == np.float32) if hasattr(out32, "dtype") else True

    record = {
        "reference_float64": ref64,
        "optimized_float64": opt64,
        "optimized_float32": opt32,
        "float64_bit_identical": identical,
        "float32_output_dtype_ok": f32_ok,
        "speedup_float64": _ratio(ref64, opt64),
        "speedup_float32_vs_reference": _ratio(ref64, opt32),
    }
    status = "ok" if identical else "FLOAT64 DRIFT"
    print(
        f"{name:14s} f64 {record['speedup_float64']['forward']:5.2f}x fwd "
        f"{record['speedup_float64']['backward']:5.2f}x bwd   "
        f"f32 {record['speedup_float32_vs_reference']['forward']:5.2f}x fwd "
        f"{record['speedup_float32_vs_reference']['backward']:5.2f}x bwd   "
        f"[{status}]"
    )
    return record


def _ratio(before: dict, after: dict) -> dict:
    return {
        "forward": round(before["forward_sec"] / after["forward_sec"], 3),
        "backward": round(before["backward_sec"] / after["backward_sec"], 3),
    }


# --------------------------------------------------------------------------
# individual ops
# --------------------------------------------------------------------------

def bench_ops(quick: bool, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    b = 8 if quick else 32
    hw = 16 if quick else 28
    seq = 10 if quick else 25
    hid = 32 if quick else 128
    emb = 16 if quick else 64
    nmmd = 64 if quick else 256

    ops: dict[str, dict] = {}

    ops["conv2d"] = _op_record(
        "conv2d",
        lambda: nn.Conv2d(3, 16, 5, padding=2, rng=np.random.default_rng(1)),
        lambda dt: rng.normal(size=(b, 3, hw, hw)).astype(dt),
        lambda x, dt: rng.normal(size=(x.shape[0], 16, hw, hw)).astype(dt),
        repeats=repeats,
    )
    ops["maxpool2d"] = _op_record(
        "maxpool2d",
        lambda: nn.MaxPool2d(2),
        lambda dt: rng.normal(size=(b, 16, hw, hw)).astype(dt),
        lambda x, dt: rng.normal(size=(b, 16, hw // 2, hw // 2)).astype(dt),
        repeats=repeats,
    )
    ops["dense"] = _op_record(
        "dense",
        lambda: nn.Linear(512, 256, rng=np.random.default_rng(2)),
        lambda dt: rng.normal(size=(b * 4, 512)).astype(dt),
        lambda x, dt: rng.normal(size=(x.shape[0], 256)).astype(dt),
        repeats=repeats,
    )
    ops["lstm_cell"] = _op_record(
        "lstm_cell",
        lambda: nn.LSTMCell(emb, hid, rng=np.random.default_rng(3)),
        lambda dt: rng.normal(size=(b, seq, emb)).astype(dt),
        lambda x, dt: rng.normal(size=(x.shape[0], seq, hid)).astype(dt),
        repeats=repeats,
    )
    ops["gru_cell"] = _op_record(
        "gru_cell",
        lambda: nn.GRUCell(emb, hid, rng=np.random.default_rng(4)),
        lambda dt: rng.normal(size=(b, seq, emb)).astype(dt),
        lambda x, dt: rng.normal(size=(x.shape[0], seq, hid)).astype(dt),
        repeats=repeats,
    )

    # rbf_mmd is a function, not a module; time it directly and check the
    # blockwise distance kernel against the dense path.
    x = rng.normal(size=(nmmd, 64))
    y = rng.normal(size=(nmmd, 64))
    mmd_sec = time_op(lambda: rbf_mmd(x, y, bandwidth=1.0), repeats=repeats)
    dense = _pairwise_sq_dists(x, y, block_rows=nmmd)
    blocked = _pairwise_sq_dists(x, y, block_rows=max(1, nmmd // 4))
    ops["rbf_mmd"] = {
        "optimized_float64": {"forward_sec": mmd_sec},
        "blockwise_max_abs_diff": float(np.abs(dense - blocked).max()),
        "blockwise_allclose": bool(np.allclose(dense, blocked, rtol=1e-12, atol=1e-12)),
    }
    print(f"{'rbf_mmd':14s} {mmd_sec * 1e3:8.3f} ms   blockwise ok={ops['rbf_mmd']['blockwise_allclose']}")
    return ops


# --------------------------------------------------------------------------
# end-to-end training steps
# --------------------------------------------------------------------------

def _train_step(model, x, y, loss_fn, lr: float = 0.1) -> float:
    logits = model.forward(x)
    loss = loss_fn.forward(logits, y)
    model.zero_grad()
    model.backward(loss_fn.backward())
    for p in model.parameters():
        p.data -= lr * p.grad
    return loss


def _step_time(make_model, x, y, *, reference: bool, repeats: int) -> tuple[float, np.ndarray]:
    model = make_model()
    if reference:
        as_reference(model)
    loss_fn = SoftmaxCrossEntropy()
    _train_step(model, x, y, loss_fn)  # warm caches / allocator
    sec = time_op(lambda: _train_step(model, x, y, loss_fn), repeats=repeats)
    logits = model.forward(x)
    return sec, logits


def bench_train_steps(quick: bool, repeats: int) -> tuple[dict, dict]:
    rng = np.random.default_rng(5)
    steps: dict[str, dict] = {}

    # CNN step: the paper's conv-pool-conv-pool-FC model.
    b = 8 if quick else 32
    hw = 16 if quick else 28
    scale = 0.25 if quick else 0.5
    x_img = rng.normal(size=(b, 3, hw, hw))
    y_img = rng.integers(0, 10, size=b)

    def make_cnn():
        return build_cnn(3, hw, 10, np.random.default_rng(6), scale=scale)

    ref_sec, ref_logits = _step_time(make_cnn, x_img, y_img, reference=True, repeats=repeats)
    opt_sec, opt_logits = _step_time(make_cnn, x_img, y_img, reference=False, repeats=repeats)
    cnn_identical = bool(np.array_equal(ref_logits, opt_logits))
    with nn.default_dtype("float32"):
        f32_sec, _ = _step_time(make_cnn, x_img, y_img, reference=False, repeats=repeats)
    steps["cnn_train_step"] = {
        "batch": b, "image": hw, "scale": scale,
        "reference_float64_sec": ref_sec,
        "optimized_float64_sec": opt_sec,
        "optimized_float32_sec": f32_sec,
        "speedup_float64": round(ref_sec / opt_sec, 3),
        "speedup_float32_vs_reference": round(ref_sec / f32_sec, 3),
        "float64_bit_identical": cnn_identical,
    }
    print(
        f"{'cnn_step':14s} ref {ref_sec * 1e3:7.2f} ms  opt64 {opt_sec * 1e3:7.2f} ms "
        f"({steps['cnn_train_step']['speedup_float64']:.2f}x)  "
        f"opt32 {f32_sec * 1e3:7.2f} ms ({steps['cnn_train_step']['speedup_float32_vs_reference']:.2f}x)"
    )

    # LSTM step: embedding -> 2-layer LSTM -> FC classifier on token ids.
    # Batch 32 matches the op-level recurrent benchmarks and the CNN step.
    b = 8 if quick else 32
    seq = 10 if quick else 25
    lscale = 0.25 if quick else 0.5
    vocab = 200
    x_tok = rng.integers(0, vocab, size=(b, seq))
    y_tok = rng.integers(0, 2, size=b)

    def make_lstm():
        return build_lstm_classifier(vocab, 2, np.random.default_rng(7), scale=lscale)

    ref_sec, ref_logits = _step_time(make_lstm, x_tok, y_tok, reference=True, repeats=repeats)
    opt_sec, opt_logits = _step_time(make_lstm, x_tok, y_tok, reference=False, repeats=repeats)
    lstm_identical = bool(np.array_equal(ref_logits, opt_logits))
    with nn.default_dtype("float32"):
        f32_sec, _ = _step_time(make_lstm, x_tok, y_tok, reference=False, repeats=repeats)
    steps["lstm_train_step"] = {
        "batch": b, "seq": seq, "scale": lscale,
        "reference_float64_sec": ref_sec,
        "optimized_float64_sec": opt_sec,
        "optimized_float32_sec": f32_sec,
        "speedup_float64": round(ref_sec / opt_sec, 3),
        "speedup_float32_vs_reference": round(ref_sec / f32_sec, 3),
        "float64_bit_identical": lstm_identical,
    }
    print(
        f"{'lstm_step':14s} ref {ref_sec * 1e3:7.2f} ms  opt64 {opt_sec * 1e3:7.2f} ms "
        f"({steps['lstm_train_step']['speedup_float64']:.2f}x)  "
        f"opt32 {f32_sec * 1e3:7.2f} ms ({steps['lstm_train_step']['speedup_float32_vs_reference']:.2f}x)"
    )

    # Per-layer attribution of the optimized CNN step (where does the
    # remaining time go?).
    profiler = LayerProfiler()
    model = make_cnn()
    loss_fn = SoftmaxCrossEntropy()
    with profiler.profile(model):
        _train_step(model, x_img, y_img, loss_fn)
    return steps, profiler.totals()


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats (CI smoke; skips timing targets)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per op (default 3 quick / 7 full)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_kernels.json"))
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)

    print(f"kernel benchmark ({'quick' if args.quick else 'full'}, repeats={repeats})")
    ops = bench_ops(args.quick, repeats)
    steps, layer_breakdown = bench_train_steps(args.quick, repeats)

    drift = [
        name
        for name, rec in {**ops, **steps}.items()
        if rec.get("float64_bit_identical") is False
    ]
    cnn_speedup = steps["cnn_train_step"]["speedup_float32_vs_reference"]
    lstm_speedup = steps["lstm_train_step"]["speedup_float64"]
    results = {
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "ops": ops,
        "train_steps": steps,
        "layer_breakdown_cnn": layer_breakdown,
        "float64_drift": drift,
        "targets": {
            "cnn_float32_speedup": {"target": 1.5, "measured": cnn_speedup},
            "lstm_float64_speedup": {"target": 1.2, "measured": lstm_speedup},
        },
    }
    results["targets_met"] = bool(cnn_speedup >= 1.5 and lstm_speedup >= 1.2)

    out_path = Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    if drift:
        print(f"FLOAT64 DRIFT in: {drift}")
        return 1
    if not args.quick and not results["targets_met"]:
        print(
            f"timing targets missed: cnn f32 {cnn_speedup:.2f}x (>=1.5), "
            f"lstm f64 {lstm_speedup:.2f}x (>=1.2)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
