"""Table I — cross-silo test accuracy (scaled reproduction).

Paper: N=20, E=5, SR=1.0, CNN on MNIST/CIFAR10 (+ LSTM Sent140, covered
by the Fig. 6/7 bench).  Here: N=10, MLP, synth datasets, 40 rounds,
2 repeats.  Expected shape: on Sim 0% the regularized methods lead and
FedProx/q-FedAvg trail FedAvg; on Sim 100% everyone ties.
"""

from benchmarks.common import (
    IMAGE_ALGORITHMS,
    SILO_CLIENTS,
    banner,
    image_fed_builder,
    run_comparison,
    silo_config,
    report,
)
from repro.experiments.report import format_accuracy_table


def _run_table(dataset: str) -> dict:
    columns = {}
    for similarity, label in [(0.0, "Sim 0%"), (0.1, "Sim 10%"), (1.0, "Sim 100%")]:
        columns[label] = run_comparison(
            IMAGE_ALGORITHMS,
            image_fed_builder(dataset, SILO_CLIENTS, similarity),
            silo_config(),
        )
    return columns


def test_table1_mnist(once):
    columns = once(_run_table, "synth_mnist")
    banner("Table I (scaled) — cross-silo accuracy, synth-MNIST")
    report(format_accuracy_table(columns))
    best_noniid = max(
        columns["Sim 0%"].items(), key=lambda kv: kv[1].accuracy_mean_std()[0]
    )
    report(f"\nbest @ Sim 0%: {best_noniid[0]}")
    # Sanity: everything learned far beyond chance.
    for result in columns["Sim 100%"].values():
        assert result.accuracy_mean_std()[0] > 0.5


def test_table1_cifar(once):
    columns = once(_run_table, "synth_cifar")
    banner("Table I (scaled) — cross-silo accuracy, synth-CIFAR")
    report(format_accuracy_table(columns))
    acc = {name: r.accuracy_mean_std()[0] for name, r in columns["Sim 0%"].items()}
    acc_iid = {name: r.accuracy_mean_std()[0] for name, r in columns["Sim 100%"].items()}
    # Paper shape 1: non-IID costs real accuracy on the CIFAR-role dataset.
    assert acc_iid["fedavg"] > acc["fedavg"] + 0.05
    # Paper shape 2: the regularized methods win on totally non-IID data.
    best_r = max(acc["rfedavg"], acc["rfedavg+"])
    assert best_r >= acc["fedavg"] - 0.01
