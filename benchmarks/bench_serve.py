"""Socket serving benchmark: RFW1 over real sockets, gated on identity.

Two parts:

1. **Bit-identity gate** — serve mode (forked workers over TCP and
   Unix-domain sockets) must reproduce the in-process serial engine bit
   for bit: dense runs, a compression pipeline with error feedback, and
   a crash/resume of a served job.  Any drift refuses to report numbers
   (and any silent degradation to serial execution fails the gate too:
   the RuntimeWarning is promoted to an error).
2. **Latency/throughput study** — round and per-request latency
   percentiles (p50/p95/p99 from the ``serve.*`` quantile metrics) and
   client throughput versus worker count, over UDS and TCP.

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke

Writes ``BENCH_serve.json`` at the repo root (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

ROUNDS = 6
LOCAL_STEPS = 4


def _federation(num_clients: int):
    from repro.experiments import build_image_federation

    return build_image_federation(
        "synth_mnist",
        num_clients=num_clients,
        similarity=0.0,
        num_train=40 * num_clients,
        num_test=160,
    )


def _model_fn(fed, seed: int = 0):
    from repro.models import build_mlp

    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes,
        np.random.default_rng(seed), (32,), feature_dim=16,
    )


def _config(**overrides):
    from repro.fl.config import FLConfig

    base = dict(
        rounds=ROUNDS, local_steps=LOCAL_STEPS, batch_size=16, lr=0.1,
        seed=13, eval_every=ROUNDS,
    )
    base.update(overrides)
    return FLConfig(**base)


def _run(fed, algorithm_name="fedavg", tracer=None, **overrides):
    """One federated job; serve degradation warnings are fatal."""
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated

    algorithm = make_algorithm(algorithm_name)
    config = _config(**overrides)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        started = time.perf_counter()
        run_federated(algorithm, fed, _model_fn(fed), config, tracer=tracer)
        wall = time.perf_counter() - started
    return algorithm, wall


# -- part 1: bit-identity gates -----------------------------------------------------


def _identity_gate(tmp: Path) -> dict:
    verdicts: dict[str, bool] = {}
    fed = _federation(8)

    def _check(gate: str, a, b) -> None:
        verdicts[gate] = bool(np.array_equal(a.global_params, b.global_params))

    serial, _ = _run(fed)
    uds, _ = _run(fed, execution="serve", num_workers=2)
    _check("serve_uds_vs_serial", serial, uds)

    tcp, _ = _run(fed, execution="serve", num_workers=2, serve_addr="tcp:127.0.0.1:0")
    _check("serve_tcp_vs_serial", serial, tcp)

    spec = "topk:0.25|qsgd:8"
    serial_c, _ = _run(fed, compression=spec)
    served_c, _ = _run(fed, compression=spec, execution="serve", num_workers=2)
    _check("serve_compressed_vs_serial", serial_c, served_c)

    # Crash/resume of a served job: checkpoint every round, drop the
    # newest checkpoints as a crash would, resume under serve.
    ckpt_dir = tmp / "ckpt"
    serve_kwargs = dict(
        execution="serve", num_workers=2,
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50,
    )
    _run(fed, "scaffold", **serve_kwargs)
    for round_idx in range(ROUNDS // 2, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
    resumed, _ = _run(fed, "scaffold", resume=True, **serve_kwargs)
    serial_s, _ = _run(fed, "scaffold")
    _check("serve_crash_resume_vs_serial", serial_s, resumed)

    for gate, passed in verdicts.items():
        if not passed:
            raise SystemExit(
                f"bit-identity gate failed: {gate} — the socket transport "
                "changed the math, not reporting latency numbers"
            )
    return verdicts


# -- part 2: latency / throughput ---------------------------------------------------


def _measure(fed, num_workers: int, addr: str | None) -> dict:
    from repro.obs import Tracer

    tracer = Tracer()
    algorithm, wall = _run(
        fed, tracer=tracer,
        execution="serve", num_workers=num_workers, serve_addr=addr,
    )
    snapshot = tracer.metrics.snapshot()
    quantiles = snapshot["quantiles"]
    counters = snapshot["counters"]
    request = quantiles["serve.request_latency_sec"]
    round_q = quantiles["serve.round_latency_sec"]

    def _ms(summary, key):
        return round(summary[key] * 1e3, 3) if summary[key] is not None else None

    return {
        "transport": "tcp" if addr else "uds",
        "workers": num_workers,
        "clients": fed.num_clients,
        "rounds": ROUNDS,
        "wall_sec": round(wall, 3),
        "clients_per_sec": round(fed.num_clients * ROUNDS / wall, 2),
        "request_latency_ms": {k: _ms(request, k) for k in ("p50", "p95", "p99")},
        "round_latency_ms": {k: _ms(round_q, k) for k in ("p50", "p95", "p99")},
        "bytes_sent": counters.get("serve.bytes_sent", 0),
        "bytes_received": counters.get("serve.bytes_received", 0),
        "ledger_reconciled": (
            counters.get("serve.bytes_wire_down") == counters.get("serve.bytes_ledger_down")
            and counters.get("serve.bytes_wire_up") == counters.get("serve.bytes_ledger_up")
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller cohorts and fewer worker counts (CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serve.json"))
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        print("bit-identity gate: serve == serial (TCP, UDS, compressed, resume) ...")
        gate = _identity_gate(Path(tmp))
        print(f"  {gate}")

    cohorts = [8] if args.quick else [8, 16]
    worker_counts = [1, 2] if args.quick else [1, 2, 4]
    cells = []
    serial_walls = {}
    for num_clients in cohorts:
        fed = _federation(num_clients)
        _, serial_wall = _run(fed)
        serial_walls[str(num_clients)] = round(serial_wall, 3)
        for workers in worker_counts:
            cell = _measure(fed, workers, addr=None)
            cells.append(cell)
            print(
                f"  uds N={num_clients:3d} W={workers}  "
                f"{cell['clients_per_sec']:7.2f} clients/s  "
                f"req p50/p95/p99 "
                f"{cell['request_latency_ms']['p50']}/"
                f"{cell['request_latency_ms']['p95']}/"
                f"{cell['request_latency_ms']['p99']} ms"
            )
        # One TCP column per cohort at the widest worker count.
        cell = _measure(fed, worker_counts[-1], addr="tcp:127.0.0.1:0")
        cells.append(cell)
        print(
            f"  tcp N={num_clients:3d} W={worker_counts[-1]}  "
            f"{cell['clients_per_sec']:7.2f} clients/s  "
            f"req p50/p95/p99 "
            f"{cell['request_latency_ms']['p50']}/"
            f"{cell['request_latency_ms']['p95']}/"
            f"{cell['request_latency_ms']['p99']} ms"
        )

    unreconciled = [c for c in cells if not c["ledger_reconciled"]]
    if unreconciled:
        raise SystemExit(
            f"byte reconciliation failed in {len(unreconciled)} dense cells — "
            "socket bytes drifted from the ledger's model-kind charges"
        )

    result = {
        "quick": args.quick,
        "rounds": ROUNDS,
        "local_steps": LOCAL_STEPS,
        "bit_identity": gate,
        "serial_wall_sec": serial_walls,
        "cells": cells,
        "interpretation": (
            "Every cell runs the same synchronous round decomposition; "
            "only the client-execution engine changes — forked workers "
            "speaking length-prefixed RFW1 frames over an ephemeral "
            "Unix-domain socket (or TCP with TCP_NODELAY). The identity "
            "gate proves serve mode is bit-identical to the serial "
            "engine (dense, compressed-with-error-feedback, and across "
            "a crash/resume) before any number is reported, and every "
            "dense cell additionally requires socket-measured model "
            "bytes to equal the CommLedger's charges exactly. Latency "
            "percentiles come from the serve.* reservoir quantile "
            "metrics, so the table exercises the same observability "
            "path a traced run exports to summary.json. Toy models "
            "make per-task compute small, so wall-clock is dominated "
            "by transport + framing overhead — the quantity this bench "
            "tracks — rather than training arithmetic."
        ),
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=1))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
