"""Figure 9 — parameter study on non-IID CIFAR (scaled).

(a) lambda sweep: too small ~= FedAvg, a sweet spot wins, too large
    destroys accuracy (the MMD loss dwarfs the task loss).
(b) client count N at fixed SR: fewer clients -> fewer participants ->
    worse accuracy, saturating once N*SR passes a threshold.
(c) local steps E at fixed rounds C.
(d) sample ratio SR at fixed N: larger SR -> better accuracy.
"""

import numpy as np

from benchmarks.common import banner, image_fed_builder, model_builder, report
from repro.experiments.runner import run_grid
from repro.fl.config import FLConfig


def _config(**overrides):
    base = dict(rounds=30, local_steps=5, batch_size=32, sample_ratio=1.0,
                lr=0.3, eval_every=5, seed=0)
    base.update(overrides)
    return FLConfig(**base)


def _accuracy(algorithm, fed_builder, config, repeats=1, **kwargs):
    result = run_grid(
        algorithm, fed_builder, model_builder("mlp"), config, repeats=repeats, **kwargs
    )
    return result.accuracy_mean_std()[0]


def test_fig9a_lambda_sweep(once):
    lambdas = [0.0, 1e-5, 1e-3, 1.0]

    def run():
        # The lambda ordering is the headline of Fig. 9a — use longer
        # runs and two repeats to push the seed noise below the effect.
        fed_builder = image_fed_builder("synth_cifar", 10, 0.0)
        config = _config(rounds=60)
        accs = {}
        for lam in lambdas:
            accs[lam] = _accuracy("rfedavg+", fed_builder, config, repeats=2, lam=lam)
        accs["fedavg"] = _accuracy("fedavg", fed_builder, config, repeats=2)
        return accs

    accs = once(run)
    banner("Fig. 9(a) — impact of lambda (synth-CIFAR Sim 0%)")
    for key, acc in accs.items():
        report(f"lambda={key}: {acc:.4f}")
    # Paper shape: the sweet spot beats both extremes; a huge lambda is
    # catastrophic (regularizer swamps the task loss and the model
    # collapses to chance).
    assert accs[1.0] < 0.2
    assert accs[1.0] < accs["fedavg"]
    assert accs[1e-3] >= accs[0.0] - 0.02
    assert accs[1e-3] > accs[1.0]


def test_fig9b_client_count(once):
    counts = [5, 10, 20, 40]

    def run():
        return {
            n: _accuracy(
                "rfedavg+",
                image_fed_builder("synth_cifar", n, 0.0),
                _config(sample_ratio=0.2 if n >= 10 else 0.4),
                lam=1e-3,
            )
            for n in counts
        }

    accs = once(run)
    banner("Fig. 9(b) — impact of client count N (SR ~ 0.2)")
    for n, acc in accs.items():
        report(f"N={n}: {acc:.4f}")
    # More clients at the same SR -> more participants -> no worse.
    assert accs[40] >= accs[5] - 0.05


def test_fig9c_local_steps(once):
    steps = [1, 2, 5, 10]

    def run():
        fed_builder = image_fed_builder("synth_cifar", 10, 0.0)
        return {
            e: _accuracy("rfedavg+", fed_builder, _config(local_steps=e), lam=1e-3)
            for e in steps
        }

    accs = once(run)
    banner("Fig. 9(c) — impact of local steps E (fixed rounds C)")
    for e, acc in accs.items():
        report(f"E={e}: {acc:.4f}")
    # With fixed C, more local steps means more total SGD — accuracy
    # must not collapse with E (paper: slight decrease at most).
    assert accs[10] > 0.5 * max(accs.values())
    assert accs[5] > accs[1] - 0.05


def test_fig9d_sample_ratio(once):
    ratios = [0.1, 0.2, 0.5, 1.0]

    def run():
        fed_builder = image_fed_builder("synth_cifar", 20, 0.0)
        return {
            sr: _accuracy("rfedavg+", fed_builder, _config(sample_ratio=sr), lam=1e-3)
            for sr in ratios
        }

    accs = once(run)
    banner("Fig. 9(d) — impact of sample ratio SR (N=20)")
    for sr, acc in accs.items():
        report(f"SR={sr}: {acc:.4f}")
    # Paper shape: smaller SR is worse on non-IID data.
    assert accs[1.0] >= accs[0.1] - 0.02
    values = np.array([accs[r] for r in ratios])
    assert values.argmax() >= 1  # best is not the smallest ratio
