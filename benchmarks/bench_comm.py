"""Communication-path benchmark: packed wire format vs pickle baseline.

Measures the three wins of the packed flat-buffer transport
(:mod:`repro.fl.wire`, ``docs/communication.md``) and verifies each is
bit-identical to the baseline before reporting numbers:

* **payload bytes** — one TopK-compressed client update under the
  float32 dtype policy: the pre-wire engine pickles the dense float64
  reconstruction; the wire engine ships an ``int32`` index stream plus
  a value stream.  The gate is packed >= 4x smaller.  The dense
  uncompressed comparison (where pickling is already near-optimal) is
  reported honestly alongside — the win there is dtype-trueness, not
  ratio.
* **broadcast serialization** — per-round cost of getting the global
  state to workers: the wire engine forks one persistent pool per run
  and packs the round state exactly once per round into shared memory;
  the pickle engine re-forks the pool (re-shipping the whole process
  image) every round.
* **delta-embedding cache** — repeated ``_raw_delta`` calls with an
  unchanged model and data must hit the cache and beat recomputation
  (gate: >= 1.3x, full mode only).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_comm.py          # full sizes
    PYTHONPATH=src python benchmarks/bench_comm.py --quick  # CI smoke

Writes ``BENCH_comm.json`` at the repo root.  Exit status: 0 when the
payload-ratio and bit-identity gates pass (plus the cache gate on full
runs), 1 otherwise — quick mode keeps the byte/identity gates fatal, so
the CI smoke job catches format or equivalence regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

import repro.fl.parallel as parallel_mod
from repro import nn
from repro.algorithms import FedAvg, make_algorithm
from repro.experiments import build_image_federation, default_model_fn
from repro.fl import wire
from repro.fl.compression import TopKSparsifier
from repro.fl.config import FLConfig
from repro.fl.parallel import ClientUpdate, SerialExecutor
from repro.fl.trainer import run_federated

REPO_ROOT = Path(__file__).resolve().parent.parent

PAYLOAD_RATIO_TARGET = 4.0
CACHE_SPEEDUP_TARGET = 1.3
TOPK_RATIO = 0.05


# --------------------------------------------------------------------------
# payload bytes: packed wire message vs pickled ClientUpdate
# --------------------------------------------------------------------------

def _update_of(params, streams, wire_size) -> ClientUpdate:
    return ClientUpdate(
        client_id=0, params=params, wire=wire_size.scalars, task_loss=0.5,
        reg_loss=0.0, num_steps=5, train_seconds=0.01, worker=1234,
        params_streams=streams, wire_size=wire_size,
    )


def bench_payload(model_params: int) -> dict:
    """Bytes on the worker->parent hop for one client update (float32)."""
    with nn.default_dtype("float32"):
        rng = np.random.default_rng(0)
        vec = rng.normal(size=model_params).astype(nn.get_default_dtype())
        compressor = TopKSparsifier(TOPK_RATIO)

        # Pre-wire engine: compress() returns the dense float64
        # reconstruction and the whole ClientUpdate record is pickled.
        recon, size = compressor.compress(vec, np.random.default_rng(1))
        pickled = len(pickle.dumps(
            _update_of(recon, None, size), protocol=pickle.HIGHEST_PROTOCOL
        ))

        # Wire engine: the same update rides as int32 indices + values.
        streams, size2 = compressor.encode(vec, np.random.default_rng(1))
        packed = len(wire.pack_client_update(_update_of(None, streams, size2)))

        # The streams must reconstruct compress()'s output exactly.
        identical = bool(np.array_equal(compressor.decode(streams, vec.size), recon))

        # Dense uncompressed comparison, reported without a gate.
        dense_size = wire.pack_client_update(
            _update_of(vec, None, size.__class__(values=vec.size))
        )
        dense_pickled = len(pickle.dumps(
            _update_of(vec, None, size.__class__(values=vec.size)),
            protocol=pickle.HIGHEST_PROTOCOL,
        ))

    ratio = pickled / packed
    print(
        f"payload (topk {TOPK_RATIO:.0%}, {model_params} params, float32): "
        f"pickle {pickled:,} B -> packed {packed:,} B  ({ratio:.1f}x smaller)  "
        f"bit-identical={identical}"
    )
    return {
        "model_params": model_params,
        "compressor": f"topk({TOPK_RATIO})",
        "dtype": "float32",
        "pickle_bytes": pickled,
        "packed_bytes": packed,
        "ratio": round(ratio, 2),
        "bit_identical": identical,
        "dense_pickle_bytes": dense_pickled,
        "dense_packed_bytes": len(dense_size),
        "dense_ratio": round(dense_pickled / len(dense_size), 3),
    }


# --------------------------------------------------------------------------
# broadcast serialization: persistent pool + 1 state pack per round
# --------------------------------------------------------------------------

class _Counts:
    def __init__(self) -> None:
        self.pools = 0
        self.state_packs = 0


def _counted_run(transport: str, fed, model_fn, config) -> tuple[_Counts, float, FedAvg]:
    counts = _Counts()
    original_pool = parallel_mod._ProcessPool
    original_pack_state = wire.pack_state

    class CountingPool(original_pool):
        def __init__(self, *args, **kwargs):
            counts.pools += 1
            super().__init__(*args, **kwargs)

    def counting_pack_state(state):
        counts.state_packs += 1
        return original_pack_state(state)

    parallel_mod._ProcessPool = CountingPool
    wire.pack_state = counting_pack_state
    try:
        algorithm = FedAvg()
        started = time.perf_counter()
        run_federated(
            algorithm, fed, model_fn,
            config.with_updates(num_workers=2, transport=transport),
        )
        elapsed = time.perf_counter() - started
    finally:
        parallel_mod._ProcessPool = original_pool
        wire.pack_state = original_pack_state
    return counts, elapsed, algorithm


def bench_broadcast(fed, model_fn, config) -> dict:
    wire_counts, wire_sec, wire_alg = _counted_run("wire", fed, model_fn, config)
    pickle_counts, pickle_sec, pickle_alg = _counted_run("pickle", fed, model_fn, config)
    identical = bool(np.array_equal(wire_alg.global_params, pickle_alg.global_params))
    eliminated = wire_counts.pools == 1 and wire_counts.state_packs == config.rounds
    print(
        f"broadcast ({config.rounds} rounds, 2 workers): "
        f"wire {wire_counts.pools} pool fork(s) + {wire_counts.state_packs} state "
        f"pack(s), {wire_sec:.2f}s;  pickle {pickle_counts.pools} pool forks, "
        f"{pickle_sec:.2f}s;  bit-identical={identical}"
    )
    return {
        "rounds": config.rounds,
        "workers": 2,
        "wire": {
            "pools_created": wire_counts.pools,
            "state_packs": wire_counts.state_packs,
            "seconds": round(wire_sec, 4),
        },
        "pickle": {
            "pools_created": pickle_counts.pools,
            "seconds": round(pickle_sec, 4),
        },
        "per_round_serialization_eliminated": eliminated,
        "bit_identical": identical,
    }


# --------------------------------------------------------------------------
# delta-embedding cache
# --------------------------------------------------------------------------

def _delta_sweep_seconds(algorithm, num_clients: int, repeats: int) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        for client in range(num_clients):
            algorithm._raw_delta(client)
    return time.perf_counter() - started


def bench_delta_cache(fed, config, repeats: int, scale: float) -> dict:
    """A cache hit replaces a feature-extractor forward pass over the
    whole shard with two content fingerprints, so the margin grows with
    model cost; the paper's CNN is the representative extractor (an MLP
    this small is cheaper to run than to fingerprint — the cache is off
    by construction a win only above that crossover)."""
    model_fn = default_model_fn("cnn", fed.spec, seed=0, scale=scale)
    runs = {}
    for cached in (True, False):
        algorithm = make_algorithm("rfedavg+", lam=1e-3, delta_cache=cached)
        run_federated(algorithm, fed, model_fn, config.with_updates(rounds=2))
        runs[cached] = algorithm
    # Both runs end at the same global model, so the sweeps below compute
    # identical deltas — one through the cache, one from scratch.
    cached_alg, uncached_alg = runs[True], runs[False]
    reference = [uncached_alg._raw_delta(c) for c in range(fed.num_clients)]
    warm = [cached_alg._raw_delta(c) for c in range(fed.num_clients)]  # key the cache
    identical = all(
        np.array_equal(a, b) for a, b in zip(reference, warm)
    ) and all(
        np.array_equal(cached_alg._raw_delta(c), reference[c])
        for c in range(fed.num_clients)
    )
    cached_sec = _delta_sweep_seconds(cached_alg, fed.num_clients, repeats)
    uncached_sec = _delta_sweep_seconds(uncached_alg, fed.num_clients, repeats)
    speedup = uncached_sec / cached_sec
    print(
        f"delta cache ({fed.num_clients} clients x {repeats} sweeps): "
        f"recompute {uncached_sec:.3f}s -> cached {cached_sec:.3f}s  "
        f"({speedup:.2f}x)  bit-identical={identical}  "
        f"hits={cached_alg.delta_cache.hits}"
    )
    return {
        "clients": fed.num_clients,
        "model": f"cnn(scale={scale})",
        "sweeps": repeats,
        "uncached_seconds": round(uncached_sec, 4),
        "cached_seconds": round(cached_sec, 4),
        "speedup": round(speedup, 3),
        "bit_identical": identical,
        "cache_hits": cached_alg.delta_cache.hits,
        "cache_misses": cached_alg.delta_cache.misses,
    }


# --------------------------------------------------------------------------
# end-to-end bit identity: serial vs wire-parallel, compressed
# --------------------------------------------------------------------------

def bench_bit_identity(fed, model_fn, config) -> dict:
    def run(num_workers: int):
        algorithm = FedAvg().with_compressor(TopKSparsifier(0.25))
        if num_workers == 1:
            algorithm.with_executor(SerialExecutor())
        run_federated(
            algorithm, fed, model_fn, config.with_updates(num_workers=num_workers)
        )
        return algorithm

    serial = run(1)
    parallel = run(2)
    identical = bool(np.array_equal(serial.global_params, parallel.global_params))
    ledger_identical = all(
        serial.ledger.round_bytes(r) == parallel.ledger.round_bytes(r)
        for r in range(serial.ledger.rounds)
    )
    degraded = parallel.executor.degraded
    transport = parallel.executor.transport
    print(
        f"bit identity (topk 25%, serial vs wire x2): params={identical} "
        f"ledger={ledger_identical} transport={transport} degraded={degraded}"
    )
    return {
        "params_identical": identical,
        "ledger_identical": ledger_identical,
        "transport": transport,
        "degraded": degraded,
    }


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke (byte + identity gates stay fatal)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_comm.json at repo root)")
    args = parser.parse_args()

    model_params = 20_000 if args.quick else 200_000
    clients = 6 if args.quick else 10
    rounds = 3 if args.quick else 5
    sweeps = 5 if args.quick else 20

    fed = build_image_federation(
        "synth_mnist", num_clients=clients, similarity=0.5,
        num_train=clients * 120, num_test=100, seed=0,
    )
    model_fn = default_model_fn("mlp", fed.spec, seed=0, scale=0.5)
    config = FLConfig(
        rounds=rounds, local_steps=3, batch_size=16, lr=0.1,
        eval_every=rounds, seed=0,
    )

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "payload": bench_payload(model_params),
        "broadcast": bench_broadcast(fed, model_fn, config),
        "delta_cache": bench_delta_cache(
            fed, config, sweeps, scale=0.15 if args.quick else 0.25
        ),
        "bit_identity": bench_bit_identity(fed, model_fn, config),
    }

    payload_ok = (
        results["payload"]["ratio"] >= PAYLOAD_RATIO_TARGET
        and results["payload"]["bit_identical"]
    )
    identity_ok = (
        results["bit_identity"]["params_identical"]
        and results["bit_identity"]["ledger_identical"]
        and results["broadcast"]["bit_identical"]
        and results["delta_cache"]["bit_identical"]
    )
    broadcast_ok = results["broadcast"]["per_round_serialization_eliminated"]
    cache_ok = results["delta_cache"]["speedup"] >= CACHE_SPEEDUP_TARGET
    results["targets"] = {
        "payload_ratio_min": PAYLOAD_RATIO_TARGET,
        "payload_ratio_met": payload_ok,
        "per_round_serialization_eliminated": broadcast_ok,
        "bit_identity_met": identity_ok,
        "cache_speedup_min": CACHE_SPEEDUP_TARGET,
        "cache_speedup_met": cache_ok,
        "cache_gate_enforced": not args.quick,
    }

    out_path = Path(args.out) if args.out else REPO_ROOT / "BENCH_comm.json"
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")

    fatal = payload_ok and identity_ok and broadcast_ok
    if not args.quick:
        fatal = fatal and cache_ok
    return 0 if fatal else 1


if __name__ == "__main__":
    raise SystemExit(main())
