"""Figures 2 and 3 — accuracy and loss curves on MNIST (scaled).

Paper: 60 rounds, cross-device and cross-silo, Sim 0% and 10%.
Expected shape: rFedAvg/rFedAvg+ converge faster and more stably; all
methods end near each other because MNIST barely suffers from non-IID
(paper Sec. VI-B1).  FedProx trails noticeably.
"""

import numpy as np

from benchmarks.common import (
    DEVICE_CLIENTS,
    IMAGE_ALGORITHMS,
    SILO_CLIENTS,
    banner,
    device_config,
    image_fed_builder,
    run_comparison,
    silo_config,
    report,
)
from repro.experiments.report import display_name


def _print_curves(results, metric="accuracy"):
    names = list(results)
    curves = {
        name: (
            results[name].mean_accuracy_curve()
            if metric == "accuracy"
            else results[name].mean_loss_curve()
        )
        for name in names
    }
    rounds = curves[names[0]][:, 0]
    header = "round".rjust(6) + "".join(display_name(n).rjust(12) for n in names)
    report(header)
    for i, r in enumerate(rounds):
        row = f"{int(r):6d}" + "".join(f"{curves[n][i, 1]:12.4f}" for n in names)
        report(row)


def test_fig2a_fig3a_cross_device_sim0(once):
    results = once(
        run_comparison,
        IMAGE_ALGORITHMS,
        image_fed_builder("synth_mnist", DEVICE_CLIENTS, 0.0),
        device_config(),
    )
    banner("Fig. 2(a) — MNIST cross-device Sim 0% accuracy curves")
    _print_curves(results, "accuracy")
    banner("Fig. 3(a) — MNIST cross-device Sim 0% loss curves")
    _print_curves(results, "loss")
    # Loss of the winners decreases over training.
    for name in ["fedavg", "rfedavg+"]:
        losses = results[name].mean_loss_curve()[:, 1]
        assert losses[-1] < losses[0]


def test_fig2b_fig3b_cross_silo_sim0(once):
    results = once(
        run_comparison,
        IMAGE_ALGORITHMS,
        image_fed_builder("synth_mnist", SILO_CLIENTS, 0.0),
        silo_config(),
    )
    banner("Fig. 2(b) — MNIST cross-silo Sim 0% accuracy curves")
    _print_curves(results, "accuracy")
    banner("Fig. 3(b) — MNIST cross-silo Sim 0% loss curves")
    _print_curves(results, "loss")
    acc = {n: r.accuracy_mean_std()[0] for n, r in results.items()}
    report("\nfinal:", {display_name(n): round(a, 4) for n, a in acc.items()})
    # Paper shape: the regularized methods are at or above FedAvg.
    assert max(acc["rfedavg"], acc["rfedavg+"]) >= acc["fedavg"] - 0.02


def test_fig2cd_sim10(once):
    def run_both():
        return (
            run_comparison(
                IMAGE_ALGORITHMS,
                image_fed_builder("synth_mnist", DEVICE_CLIENTS, 0.1),
                device_config(),
            ),
            run_comparison(
                IMAGE_ALGORITHMS,
                image_fed_builder("synth_mnist", SILO_CLIENTS, 0.1),
                silo_config(),
            ),
        )

    device, silo = once(run_both)
    banner("Fig. 2(c) — MNIST cross-device Sim 10% accuracy curves")
    _print_curves(device, "accuracy")
    banner("Fig. 2(d) — MNIST cross-silo Sim 10% accuracy curves")
    _print_curves(silo, "accuracy")
    # Paper shape: with 10% shared IID data the algorithm gaps shrink.
    acc_silo = np.array([r.accuracy_mean_std()[0] for r in silo.values()])
    spread_10 = acc_silo.max() - np.median(acc_silo)
    assert spread_10 < 0.25
