"""Benchmark-suite configuration.

Each bench runs its experiment exactly once via ``benchmark.pedantic``
(an FL training run is far too slow for repeated timing, and the number
of interest is the experiment's *output*, not its runtime) and prints a
paper-style table to stdout; run with ``-s`` or read the captured output
in bench_output.txt.
"""

import pytest

from benchmarks.common import reset_results


@pytest.fixture(scope="session", autouse=True)
def _reset_results_file():
    """Start every bench session with a fresh benchmarks/results.txt.

    pytest captures stdout, so each bench's paper-style tables are
    *also* appended to that file via :func:`benchmarks.common.report`.
    """
    reset_results()


@pytest.fixture
def once(benchmark):
    """Run a callable once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
