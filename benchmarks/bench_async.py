"""Asynchronous execution benchmark: straggler tolerance study.

Two parts:

1. **Identity gate** — zero-latency async (instant runtimes, full-
   cohort buffer) must reproduce the synchronous trainer bit-for-bit;
   the bench refuses to report numbers from an engine that changed the
   math.
2. **Straggler study** — rFedAvg / rFedAvg+ vs FedAvg / SCAFFOLD under
   Gaussian latency heterogeneity at two levels (mild and severe), with
   a half-cohort buffer so stale updates actually flow.  Reports final
   accuracy against *simulated* wall-clock, mean/max staleness, and the
   engine's update throughput (applied updates per real second).

The paper's delayed delta^k embeddings make the rFedAvg variants
naturally staleness-tolerant — their regularizer already consumes
round-old state — which this bench quantifies against the
staleness-sensitive baselines.

    PYTHONPATH=src python benchmarks/bench_async.py

Writes ``BENCH_async.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms import make_algorithm
from repro.experiments import build_image_federation, default_model_fn
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated

CLIENTS = 10
ROUNDS = 40
BUFFER = 8  # flush without the two slowest arrivals: stale updates flow
HET_LEVELS = {"mild": 0.5, "severe": 2.0}

# rFedAvg variants (delayed-embedding regularizer) vs the two
# staleness-sensitive baselines the study contrasts them with.
ALGORITHMS: dict[str, dict] = {
    "fedavg": {},
    "scaffold": {},
    "rfedavg": {"lam": 1e-3},
    "rfedavg+": {"lam": 1e-3},
}
CONFIG_OVERRIDES: dict[str, dict] = {
    "scaffold": {"lr": 0.15},  # same tuning the table benches use
}


def _build():
    fed = build_image_federation(
        "synth_mnist", num_clients=CLIENTS, similarity=0.0,
        num_train=2000, num_test=400, seed=0,
    )
    model_fn = default_model_fn("mlp", fed.spec, seed=0)
    return fed, model_fn


def _config(name: str, **overrides) -> FLConfig:
    base = dict(rounds=ROUNDS, local_steps=5, batch_size=32, lr=0.3,
                eval_every=ROUNDS, seed=0)
    base.update(CONFIG_OVERRIDES.get(name, {}))
    base.update(overrides)
    return FLConfig(**base)


def _identity_gate(fed, model_fn) -> dict:
    """Zero-latency async must equal sync exactly."""
    verdicts = {}
    for name in ("fedavg", "rfedavg+"):
        kwargs = ALGORITHMS[name]
        sync_alg = make_algorithm(name, **kwargs)
        run_federated(sync_alg, fed, model_fn, _config(name))
        async_alg = make_algorithm(name, **kwargs)
        run_federated(async_alg, fed, model_fn, _config(name, execution="async"))
        identical = bool(
            np.array_equal(sync_alg.global_params, async_alg.global_params)
        )
        verdicts[name] = identical
        if not identical:
            raise SystemExit(
                f"bit-identity gate failed for {name}: zero-latency async "
                "diverged from sync — not reporting benchmark numbers"
            )
    return verdicts


def _straggler_cell(fed, model_fn, name: str, het: float) -> dict:
    config = _config(
        name, execution="async", buffer_size=BUFFER,
        runtime=f"gaussian:het={het},std=0.1",
    )
    algorithm = make_algorithm(name, **ALGORITHMS[name])
    started = time.perf_counter()
    history = run_federated(algorithm, fed, model_fn, config)
    wall = time.perf_counter() - started
    async_history = history.async_history
    applied = len(async_history.records)
    return {
        "final_accuracy": round(history.final_accuracy, 4),
        "sim_time": round(async_history.records[-1].sim_time, 3),
        "applied_updates": applied,
        "discarded_updates": async_history.discarded_updates,
        "mean_staleness": round(async_history.mean_staleness(), 3),
        "max_staleness": async_history.max_staleness(),
        "updates_per_sec": round(applied / wall, 2),
        "accuracy_per_sim_second": round(
            history.final_accuracy / async_history.records[-1].sim_time, 4
        ),
    }


def main() -> None:
    fed, model_fn = _build()
    print("identity gate: zero-latency async == sync ...")
    gate = _identity_gate(fed, model_fn)
    print(f"  {gate}")

    study: dict[str, dict] = {}
    for level, het in HET_LEVELS.items():
        study[level] = {"heterogeneity": het, "algorithms": {}}
        for name in ALGORITHMS:
            cell = _straggler_cell(fed, model_fn, name, het)
            study[level]["algorithms"][name] = cell
            print(
                f"  het={het} {name:10s} acc {cell['final_accuracy']:.4f}  "
                f"mean staleness {cell['mean_staleness']:.2f}  "
                f"{cell['updates_per_sec']:.1f} upd/s"
            )

    result = {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "buffer_size": BUFFER,
        "staleness_exponent": FLConfig().staleness_exponent,
        "bit_identity": gate,
        "straggler_study": study,
        "interpretation": (
            "Half-cohort buffering under Gaussian latency heterogeneity: "
            "the rFedAvg variants' delayed-embedding regularizer tolerates "
            "stale arrivals, while SCAFFOLD's control variates and plain "
            "FedAvg averaging absorb them undamped. Accuracy per simulated "
            "second is the straggler-tolerance figure of merit: async "
            "aggregation keeps the fast clients moving instead of waiting "
            "for the slowest cohort member each round."
        ),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_async.json"
    out.write_text(json.dumps(result, indent=1))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
