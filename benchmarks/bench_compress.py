"""Compression-pipeline benchmark: the accuracy-vs-bytes frontier.

Runs FedAvg and rFedAvg+ through the composable compression pipeline
(``FLConfig.compression``; rFedAvg+ additionally routes its second
synchronization through ``FLConfig.sync_compression``) at three
compression points each, against their dense baselines, and reports the
accuracy-vs-uplink-bytes frontier plus a zero-error-feedback ablation
at the heaviest point.  Two gates guard the run:

* **bit identity** — a ``compression='none'`` run must be bit-identical
  (final parameters + per-round ledger bytes) to a run with no
  compression knob at all.  Fatal in quick AND full mode: this is the
  "the pipeline costs nothing when off" contract.
* **recovery** — at the target point (``topk:0.05|qsgd:8``) the
  error-feedback run must spend >= 8x fewer uplink bytes than dense
  while losing <= 0.5pp accuracy (tail-mean over the last 3 evals) on
  the CNN scenario.  Fatal in full mode only — quick mode shrinks the
  runs far below where accuracy statements mean anything.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_compress.py          # full frontier
    PYTHONPATH=src python benchmarks/bench_compress.py --quick  # CI smoke

Writes ``BENCH_compress.json`` at the repo root.  Exit status: 0 when
the gates pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro.algorithms import make_algorithm
from repro.experiments import build_image_federation, default_model_fn
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated

REPO_ROOT = Path(__file__).resolve().parent.parent

UPLINK_REDUCTION_TARGET = 8.0
ACCURACY_TOLERANCE_PP = 0.5  # percentage points, tail-mean accuracy
TARGET_SPEC = "topk:0.05|qsgd:8"

# The frontier: mild -> target -> extreme.
COMPRESSION_POINTS = ["qsgd:8", TARGET_SPEC, "sign"]

LAMBDA = 1e-3


def _uplink_bytes(algorithm) -> int:
    """All UP-direction ledger bytes (model + delta + control...)."""
    return algorithm.ledger.total("up")


def _run(name, kwargs, fed, model_fn, config):
    algorithm = make_algorithm(name, **kwargs)
    history = run_federated(algorithm, fed, model_fn, config)
    return algorithm, history


def _acc(history) -> float:
    return history.tail_mean_accuracy(3)


# --------------------------------------------------------------------------
# gate (a): 'none' pipeline is bit-identical to no knob at all
# --------------------------------------------------------------------------

def bench_none_bit_identity(fed, model_fn, config) -> dict:
    plain_alg, plain_hist = _run("fedavg", {}, fed, model_fn, config)
    none_alg, none_hist = _run(
        "fedavg", {}, fed, model_fn, config.with_updates(compression="none")
    )
    params_identical = bool(
        np.array_equal(plain_alg.global_params, none_alg.global_params)
    )
    ledger_identical = plain_alg.ledger.rounds == none_alg.ledger.rounds and all(
        plain_alg.ledger.round_bytes(r) == none_alg.ledger.round_bytes(r)
        for r in range(plain_alg.ledger.rounds)
    )
    accuracy_identical = plain_hist.final_accuracy == none_hist.final_accuracy
    print(
        f"none bit-identity: params={params_identical} "
        f"ledger={ledger_identical} accuracy={accuracy_identical}"
    )
    return {
        "params_identical": params_identical,
        "ledger_identical": ledger_identical,
        "accuracy_identical": accuracy_identical,
    }


# --------------------------------------------------------------------------
# the frontier: accuracy vs uplink bytes
# --------------------------------------------------------------------------

def bench_frontier(fed, model_fn, config) -> dict:
    """FedAvg + rFedAvg+ at dense / 3 compression points / no-EF ablation."""
    rows: dict[str, dict] = {}

    def add(label, name, kwargs, run_config):
        algorithm, history = _run(name, kwargs, fed, model_fn, run_config)
        rows[label] = {
            "algorithm": name,
            "compression": run_config.compression,
            "sync_compression": run_config.sync_compression,
            "error_feedback": run_config.error_feedback,
            "accuracy": round(float(_acc(history)), 4),
            "final_accuracy": round(float(history.final_accuracy), 4),
            "uplink_bytes": _uplink_bytes(algorithm),
            "downlink_bytes": algorithm.ledger.total("down"),
        }
        print(
            f"  {label:28s} acc={rows[label]['accuracy']:.4f} "
            f"uplink={rows[label]['uplink_bytes']:,} B"
        )

    print("frontier (fedavg):")
    add("fedavg/dense", "fedavg", {}, config)
    for spec in COMPRESSION_POINTS:
        add(f"fedavg/{spec}", "fedavg", {}, config.with_updates(compression=spec))
    add(
        f"fedavg/{TARGET_SPEC}/no-ef", "fedavg", {},
        config.with_updates(compression=TARGET_SPEC, error_feedback=False),
    )

    print("frontier (rfedavg+):")
    kwargs = {"lam": LAMBDA}
    add("rfedavg+/dense", "rfedavg+", kwargs, config)
    for spec in COMPRESSION_POINTS:
        # rFedAvg+ compresses both the uploads and its second sync.
        add(
            f"rfedavg+/{spec}", "rfedavg+", kwargs,
            config.with_updates(compression=spec, sync_compression=spec),
        )
    add(
        f"rfedavg+/{TARGET_SPEC}/no-ef", "rfedavg+", kwargs,
        config.with_updates(
            compression=TARGET_SPEC, sync_compression=TARGET_SPEC,
            error_feedback=False,
        ),
    )
    return rows


def evaluate_gates(rows: dict, none_identity: dict, quick: bool) -> dict:
    gates: dict = {
        "none_bit_identity": all(none_identity.values()),
        "uplink_reduction_min": UPLINK_REDUCTION_TARGET,
        "accuracy_tolerance_pp": ACCURACY_TOLERANCE_PP,
        "target_spec": TARGET_SPEC,
    }
    for name in ("fedavg", "rfedavg+"):
        dense = rows[f"{name}/dense"]
        target = rows[f"{name}/{TARGET_SPEC}"]
        no_ef = rows[f"{name}/{TARGET_SPEC}/no-ef"]
        reduction = dense["uplink_bytes"] / target["uplink_bytes"]
        loss_pp = (dense["accuracy"] - target["accuracy"]) * 100.0
        gates[name] = {
            "uplink_reduction": round(reduction, 2),
            "accuracy_loss_pp": round(loss_pp, 3),
            "ef_advantage_pp": round(
                (target["accuracy"] - no_ef["accuracy"]) * 100.0, 3
            ),
            "reduction_met": reduction >= UPLINK_REDUCTION_TARGET,
            "tolerance_met": loss_pp <= ACCURACY_TOLERANCE_PP,
        }
        print(
            f"gate [{name}]: {reduction:.1f}x fewer uplink bytes, "
            f"{loss_pp:+.2f}pp accuracy vs dense "
            f"(EF worth {gates[name]['ef_advantage_pp']:+.2f}pp)"
        )
    gates["recovery_met"] = all(
        gates[name]["reduction_met"] and gates[name]["tolerance_met"]
        for name in ("fedavg", "rfedavg+")
    )
    gates["recovery_gate_enforced"] = not quick
    return gates


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny MLP runs for CI smoke (bit-identity gate stays fatal)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_compress.json at repo root)")
    args = parser.parse_args()

    if args.quick:
        clients, rounds, model, scale = 4, 4, "mlp", 1.0
        num_train, eval_every = 400, 2
    else:
        clients, rounds, model, scale = 8, 40, "cnn", 0.15
        num_train, eval_every = 1600, 4

    fed = build_image_federation(
        "synth_mnist", num_clients=clients, similarity=0.0,
        num_train=num_train, num_test=400, seed=0,
    )
    model_fn = default_model_fn(model, fed.spec, seed=0, scale=scale)
    config = FLConfig(
        rounds=rounds, local_steps=3, batch_size=16, lr=0.3,
        eval_every=eval_every, seed=0,
    )

    none_identity = bench_none_bit_identity(fed, model_fn, config)
    rows = bench_frontier(fed, model_fn, config)
    gates = evaluate_gates(rows, none_identity, args.quick)

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "scenario": {
            "dataset": "synth_mnist", "model": f"{model}(scale={scale})",
            "clients": clients, "rounds": rounds, "num_train": num_train,
        },
        "none_bit_identity": none_identity,
        "frontier": rows,
        "targets": gates,
    }
    out_path = Path(args.out) if args.out else REPO_ROOT / "BENCH_compress.json"
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")

    fatal = gates["none_bit_identity"]
    if not args.quick:
        fatal = fatal and gates["recovery_met"]
    return 0 if fatal else 1


if __name__ == "__main__":
    raise SystemExit(main())
