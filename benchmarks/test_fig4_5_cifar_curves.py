"""Figures 4 and 5 — accuracy and loss curves on CIFAR10 (scaled).

Paper: 200 rounds, CNN.  Here: 50 rounds with the paper's CNN at scale
0.15 for the headline non-IID setting (architecture-faithful) and the
fast MLP for the Sim 10% comparison.  Expected shape: non-IID costs a
large accuracy gap vs IID; rFedAvg+ leads on Sim 0%.
"""

from benchmarks.common import (
    IMAGE_ALGORITHMS,
    SILO_CLIENTS,
    banner,
    image_fed_builder,
    run_comparison,
    silo_config,
    report,
)
from repro.experiments.report import display_name, format_accuracy_table


def test_fig4b_cross_silo_sim0_with_cnn(once):
    """The flagship curve with the real (scaled) CNN architecture."""
    subset = {k: IMAGE_ALGORITHMS[k] for k in ["fedavg", "rfedavg", "rfedavg+"]}
    results = once(
        run_comparison,
        subset,
        image_fed_builder("synth_cifar", SILO_CLIENTS, 0.0),
        silo_config(rounds=30, eval_every=3),
        "cnn",
        0.15,
        1,
    )
    banner("Fig. 4(b) — CIFAR cross-silo Sim 0% (CNN), accuracy curve tails")
    for name, result in results.items():
        curve = result.mean_accuracy_curve()
        tail = ", ".join(f"{v:.3f}" for v in curve[-5:, 1])
        report(f"{display_name(name):12s} last evals: {tail}")
    for result in results.values():
        assert result.accuracy_mean_std()[0] > 0.2  # all learned


def test_fig4_5_mlp_sim_sweep(once):
    def run_all():
        columns = {}
        for similarity, label in [(0.0, "Sim 0%"), (0.1, "Sim 10%"), (1.0, "Sim 100%")]:
            columns[label] = run_comparison(
                IMAGE_ALGORITHMS,
                image_fed_builder("synth_cifar", SILO_CLIENTS, similarity),
                silo_config(rounds=50, eval_every=5),
            )
        return columns

    columns = once(run_all)
    banner("Fig. 4/5 summary — CIFAR cross-silo accuracy by similarity")
    report(format_accuracy_table(columns))
    acc0 = {n: r.accuracy_mean_std()[0] for n, r in columns["Sim 0%"].items()}
    acc100 = {n: r.accuracy_mean_std()[0] for n, r in columns["Sim 100%"].items()}
    # Paper shape: non-IID costs FedAvg a big chunk of accuracy on CIFAR.
    assert acc100["fedavg"] - acc0["fedavg"] > 0.05
    # Regularized methods lead (or tie) on totally non-IID data.
    assert max(acc0["rfedavg+"], acc0["rfedavg"]) >= acc0["fedavg"] - 0.01
    # Loss curves of rFedAvg+ decrease.
    losses = columns["Sim 0%"]["rfedavg+"].mean_loss_curve()[:, 1]
    assert losses[-1] < losses[0]
