"""Shared benchmark scaffolding.

Every bench reproduces one paper table/figure at a **reduced scale**
documented here and in EXPERIMENTS.md:

* models: MLP (32-d features) for most runs, the paper CNN at scale
  0.15 for the CIFAR curve bench, the paper LSTM at scale 0.15 for
  Sent140 — full-width CNN/LSTM at paper client counts would take days
  on one CPU core and change no qualitative conclusion.
* clients: cross-silo N=10 (paper: 20), cross-device N=50, SR=0.2
  (paper: 500, SR=0.2).
* rounds: 40-60 (paper: 60-200) — enough for the orderings to settle.

Regularization weights: lambda is a normalization-sensitive knob (the
paper uses 1e-4 MNIST / 1e-5 CIFAR at 512-d features); our features are
32-d so the benches use lambda = 1e-3, chosen by the Fig. 9a sweep.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.data.dataset import FederatedDataset
from repro.experiments import (
    build_femnist_federation,
    build_image_federation,
    build_sent140_federation,
    cross_device_config,
    cross_silo_config,
    default_model_fn,
)
from repro.experiments.runner import RunResult, compare_algorithms
from repro.fl.config import FLConfig

# Scaled-down counterparts of the paper's two settings.
SILO_CLIENTS = 10
DEVICE_CLIENTS = 50
TRAIN_SAMPLES = 2000
TEST_SAMPLES = 400
LAMBDA = 1e-3  # MLP feature dim 32; see Fig. 9a bench
LAMBDA_LSTM = 1e-2

# The six compared methods with their paper hyperparameters (adapted
# where the paper itself adapts them per dataset).
IMAGE_ALGORITHMS: dict[str, dict] = {
    "fedavg": {},
    "fedprox": {"mu": 1.0},
    "scaffold": {"eta_g": 1.0},
    "qfedavg": {"q": 1.0},
    "rfedavg": {"lam": LAMBDA},
    "rfedavg+": {"lam": LAMBDA},
}

# Per-method config tuning, mirroring the paper's own practice (it
# lowers FedProx's lr on cross-device Sent140 "otherwise it will not
# converge"); SCAFFOLD's control variates are unstable at the bench lr.
CONFIG_OVERRIDES: dict[str, dict] = {
    "scaffold": {"lr": 0.15},
}

SENT140_ALGORITHMS: dict[str, dict] = {
    "fedavg": {},
    "fedprox": {"mu": 0.01},
    "scaffold": {"eta_g": 1.0},
    "qfedavg": {"q": 1e-4},
    "rfedavg": {"lam": LAMBDA_LSTM},
    "rfedavg+": {"lam": LAMBDA_LSTM},
}


def silo_config(**overrides) -> FLConfig:
    base = dict(rounds=60, batch_size=32, lr=0.5, eval_every=3)
    base.update(overrides)
    return cross_silo_config(**base)


def device_config(**overrides) -> FLConfig:
    base = dict(rounds=60, batch_size=32, lr=0.5, eval_every=3)
    base.update(overrides)
    return cross_device_config(**base)


def image_fed_builder(
    dataset: str, num_clients: int, similarity: float
) -> Callable[[int], FederatedDataset]:
    def build(seed: int) -> FederatedDataset:
        return build_image_federation(
            dataset,
            num_clients=num_clients,
            similarity=similarity,
            num_train=TRAIN_SAMPLES,
            num_test=TEST_SAMPLES,
            seed=seed,
        )

    return build


def sent140_fed_builder(num_users: int, iid: bool) -> Callable[[int], FederatedDataset]:
    def build(seed: int) -> FederatedDataset:
        return build_sent140_federation(num_users=num_users, iid=iid, seed=seed)

    return build


def femnist_fed_builder(num_writers: int) -> Callable[[int], FederatedDataset]:
    def build(seed: int) -> FederatedDataset:
        return build_femnist_federation(
            num_writers=num_writers, samples_per_writer=20, seed=seed
        )

    return build


def model_builder(model_name: str, scale: float = 1.0):
    """(fed, seed) -> model factory, for run_experiment."""

    def build(fed: FederatedDataset, seed: int):
        return default_model_fn(model_name, fed.spec, seed=seed, scale=scale)

    return build


def run_comparison(
    algorithms: dict[str, dict],
    fed_builder: Callable[[int], FederatedDataset],
    config: FLConfig,
    model_name: str = "mlp",
    scale: float = 1.0,
    repeats: int = 2,
    eval_per_client: bool = False,
    config_overrides: dict[str, dict] | None = None,
) -> dict[str, RunResult]:
    """Run the full method comparison once; used by most benches.

    ``config_overrides`` defaults to the image-task overrides; pass {}
    to disable (the Sent140 bench does — its RMSProp lr already suits
    every method).
    """
    if config_overrides is None:
        config_overrides = CONFIG_OVERRIDES
    return compare_algorithms(
        algorithms,
        fed_builder,
        model_builder(model_name, scale),
        config,
        repeats=repeats,
        eval_per_client=eval_per_client,
        config_overrides=config_overrides,
    )


RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def reset_results() -> None:
    """Truncate the results file (called once per bench session)."""
    with open(RESULTS_PATH, "w") as handle:
        handle.write("paper-style tables from the latest benchmark run\n")


def report(*parts) -> None:
    """Print a result line and append it to benchmarks/results.txt.

    pytest captures test stdout by default, so the printed tables would
    be invisible in a plain ``pytest benchmarks/`` run; the results file
    preserves them regardless of capture settings.
    """
    line = " ".join(str(p) for p in parts)
    print(line)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(line + "\n")


def banner(title: str) -> None:
    report()
    report("=" * 72)
    report(title)
    report("=" * 72)
