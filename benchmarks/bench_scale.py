"""Cross-device scale-out benchmark: flat memory at a million clients.

Two parts:

1. **Bit-identity gate** — at small N the whole scale stack (virtual
   clients, sharded delta table, streaming history) must reproduce the
   eager/dense/appending run bit-for-bit, *including* across a
   crash/resume.  The bench refuses to report memory numbers from a
   stack that changed the math.
2. **Memory study** — one subprocess per population (``ru_maxrss`` is
   monotone within a process, so peaks must be isolated), each running
   a 100-client-per-round rFedAvg+ job over a virtual population.  The
   headline gate: peak RSS at 1M clients stays under 2x the 10k-client
   run — population size buys a size vector and a reported mask, not
   resident shards.

    PYTHONPATH=src python benchmarks/bench_scale.py            # full (1M)
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI (100k)

Writes ``BENCH_scale.json`` at the repo root (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

COHORT = 100
ROUNDS = 5
SMALL_POPULATION = 10_000
FULL_POPULATION = 1_000_000
QUICK_POPULATION = 100_000
RSS_GATE = 2.0  # peak_rss(big) must stay under this multiple of small
HIER_TOPOLOGY = "hier:8:4"  # the hierarchy column's topology at big N


def _model_fn(fed, seed: int = 0):
    from repro.models import build_mlp

    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes,
        np.random.default_rng(seed), (16,), feature_dim=8,
    )


def _scale_config(population: int, **overrides):
    from repro.fl.config import FLConfig

    base = dict(
        rounds=ROUNDS, local_steps=2, batch_size=8, lr=0.1, seed=7,
        sample_ratio=COHORT / population, sampler="reservoir",
        history_mode="stream", eval_every=ROUNDS,
    )
    base.update(overrides)
    return FLConfig(**base)


# -- part 2: one population, measured in its own process ----------------------------


def probe(population: int, topology: str = "flat") -> dict:
    from repro.algorithms import make_algorithm
    from repro.data import make_virtual_federation
    from repro.fl.trainer import run_federated
    from repro.obs import peak_rss_bytes

    fed = make_virtual_federation(
        population, seed=1, similarity=0.2, samples_per_client=20, max_live=256
    )
    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    config = _scale_config(population, topology=topology)
    started = time.perf_counter()
    history = run_federated(algorithm, fed, _model_fn(fed), config)
    wall = time.perf_counter() - started
    summary = history.summary_dict()
    return {
        "population": population,
        "topology": topology,
        "cohort": COHORT,
        "rounds": summary["num_records"],
        "peak_rss_mb": round(peak_rss_bytes() / 2**20, 1),
        "wall_sec": round(wall, 2),
        "final_accuracy": round(history.final_accuracy or 0.0, 4),
        "materializations": fed.clients.materializations,
        "max_live_clients": fed.clients.max_live,
        "delta_rows_resident": algorithm.delta_table.resident_rows,
        "delta_rows_spilled": algorithm.delta_table.spilled_rows,
    }


def _probe_in_subprocess(population: int, topology: str = "flat") -> dict:
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--probe", str(population), "--probe-topology", topology,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
        timeout=1800,
    )
    if proc.returncode != 0:
        raise SystemExit(f"probe({population}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


# -- part 1: bit-identity gates at small N ------------------------------------------


def _identity_gate(tmp_path: Path) -> dict:
    from repro.algorithms import make_algorithm
    from repro.data import make_virtual_federation
    from repro.fl.trainer import run_federated

    virt = make_virtual_federation(
        12, seed=5, similarity=0.2, samples_per_client=16, max_live=4
    )
    eager = virt.materialize()
    verdicts: dict[str, bool] = {}

    def _run(fed, **overrides):
        config = _scale_config(
            fed.num_clients, sample_ratio=0.5, eval_every=2, **overrides
        )
        algorithm = make_algorithm("rfedavg+", lam=1e-3)
        run_federated(algorithm, fed, _model_fn(fed), config)
        return algorithm

    # Virtual + sharded + streaming vs eager + dense + appending.
    lazy = _run(virt, stream_dir=str(tmp_path / "lazy"))
    dense = _run(eager, history_mode="append", state_sharding="dense")
    verdicts["virtual_sharded_streaming_vs_eager"] = bool(
        np.array_equal(lazy.global_params, dense.global_params)
    )

    # Crash/resume on the full scale stack.
    ckpt_dir = tmp_path / "ckpt"
    _run(
        virt, stream_dir=str(tmp_path / "crash"),
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50,
    )
    for round_idx in range(2, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
    resumed = _run(
        virt, stream_dir=str(tmp_path / "crash"),
        checkpoint_dir=str(ckpt_dir), checkpoint_keep=50, resume=True,
    )
    verdicts["crash_resume"] = bool(
        np.array_equal(lazy.global_params, resumed.global_params)
    )

    for gate, passed in verdicts.items():
        if not passed:
            raise SystemExit(
                f"bit-identity gate failed: {gate} — the scale stack changed "
                "the math, not reporting memory numbers"
            )
    return verdicts


# -- driver -------------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help=f"big population {QUICK_POPULATION:,} instead of "
                             f"{FULL_POPULATION:,} (CI smoke)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_scale.json"))
    parser.add_argument("--probe", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--probe-topology", default="flat", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.probe is not None:
        print(json.dumps(probe(args.probe, args.probe_topology)))
        return

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
        print("bit-identity gate: scale stack == eager stack ...")
        gate = _identity_gate(Path(tmp))
        print(f"  {gate}")

    big_population = QUICK_POPULATION if args.quick else FULL_POPULATION
    cells = {}
    for population in (SMALL_POPULATION, big_population):
        cell = _probe_in_subprocess(population)
        cells[str(population)] = cell
        print(
            f"  N={population:>9,}  peak RSS {cell['peak_rss_mb']:7.1f} MB  "
            f"{cell['wall_sec']:6.2f}s  "
            f"{cell['materializations']} shards rendered"
        )

    # Hierarchy column: the big population again under hier:8:4 — the
    # region tier adds O(R) model copies, not O(N) state, so the same
    # peak-RSS gate applies unchanged.
    hier_cell = _probe_in_subprocess(big_population, topology=HIER_TOPOLOGY)
    cells[f"{big_population}:{HIER_TOPOLOGY}"] = hier_cell
    print(
        f"  N={big_population:>9,} ({HIER_TOPOLOGY})  "
        f"peak RSS {hier_cell['peak_rss_mb']:7.1f} MB  "
        f"{hier_cell['wall_sec']:6.2f}s  "
        f"{hier_cell['materializations']} shards rendered"
    )

    small = cells[str(SMALL_POPULATION)]
    big = cells[str(big_population)]
    ratio = big["peak_rss_mb"] / small["peak_rss_mb"]
    hier_ratio = hier_cell["peak_rss_mb"] / small["peak_rss_mb"]
    print(f"  RSS ratio {ratio:.2f}x flat, {hier_ratio:.2f}x {HIER_TOPOLOGY} "
          f"(gate: < {RSS_GATE}x)")
    if ratio >= RSS_GATE:
        raise SystemExit(
            f"memory gate failed: {big_population:,} clients peaked at "
            f"{ratio:.2f}x the {SMALL_POPULATION:,}-client run"
        )
    if hier_ratio >= RSS_GATE:
        raise SystemExit(
            f"memory gate failed: {big_population:,} clients under "
            f"{HIER_TOPOLOGY} peaked at {hier_ratio:.2f}x the "
            f"{SMALL_POPULATION:,}-client flat run"
        )

    result = {
        "cohort_per_round": COHORT,
        "rounds": ROUNDS,
        "quick": args.quick,
        "bit_identity": gate,
        "populations": cells,
        "peak_rss_ratio": round(ratio, 3),
        "peak_rss_ratio_hier": round(hier_ratio, 3),
        "rss_gate": RSS_GATE,
        "interpretation": (
            "Each population runs in its own subprocess (ru_maxrss is "
            "monotone) with 100 clients sampled per round by Floyd "
            "reservoir, lazily materialized shards, a sharded delta "
            "table and a streaming history. Peak RSS is flat across a "
            "100x population jump because the only O(N) state is the "
            "int64 size vector and the boolean reported mask; client "
            "data, delta rows and round records scale with the cohort. "
            "The identity gates prove the same stack is bit-identical "
            "to the eager path at small N, crash/resume included. The "
            "hierarchy column reruns the big population under "
            f"{HIER_TOPOLOGY}: the region tier adds R model copies "
            "(O(R d)) and an O(R) bounds array, so it sits under the "
            "same peak-RSS gate."
        ),
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=1))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
