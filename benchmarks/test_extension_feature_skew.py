"""Extension: feature-distribution skew (the regularizer's home turf).

The paper simulates *label* skew on MNIST/CIFAR and relies on Sent140 /
FEMNIST for natural feature skew.  Its reference [32] (Li et al., ICDE
2022) identifies feature-distribution skew as a distinct non-IID type:
same labels everywhere, different input conditions per client.  Since
the distribution regularizer is a domain-adaptation device — it aligns
clients' *feature marginals* — feature skew is where its mechanism is
most direct.  This bench builds exactly that setting (IID labels +
per-client input styles) and shows the regularizer's largest wins.
"""

from benchmarks.common import banner, model_builder, silo_config, report
from repro.experiments import build_feature_skew_federation
from repro.experiments.report import format_accuracy_table
from repro.experiments.runner import compare_algorithms

ALGORITHMS = {
    "fedavg": {},
    "scaffold": {"eta_g": 1.0},
    "rfedavg": {"lam": 1e-2},
    "rfedavg+": {"lam": 1e-2},
}


def test_extension_feature_skew(once):
    def run():
        columns = {}
        for strength, label in [(0.5, "mild skew"), (1.5, "strong skew")]:

            def fed_builder(seed, _s=strength):
                return build_feature_skew_federation(
                    "synth_cifar",
                    num_clients=10,
                    skew_strength=_s,
                    num_train=2000,
                    num_test=400,
                    seed=seed,
                )

            columns[label] = compare_algorithms(
                ALGORITHMS,
                fed_builder,
                model_builder("mlp"),
                silo_config(),
                repeats=2,
                config_overrides={"scaffold": {"lr": 0.15}},
            )
        return columns

    columns = once(run)
    banner("Extension — feature-distribution skew (synth-CIFAR, IID labels)")
    report(format_accuracy_table(columns))
    strong = {n: r.accuracy_mean_std()[0] for n, r in columns["strong skew"].items()}
    # The domain-adaptation mechanism pays off most here.
    assert strong["rfedavg+"] > strong["fedavg"]
    assert max(strong["rfedavg"], strong["rfedavg+"]) == max(strong.values())


def test_extension_contrastive_vs_distributional(once):
    """MOON aligns each client's features to the global model per
    sample; rFedAvg+ aligns client feature *distributions* to each
    other.  Compare both against FedAvg on label-skewed CIFAR."""
    from benchmarks.common import LAMBDA, image_fed_builder

    def run():
        fed = image_fed_builder("synth_cifar", 10, 0.0)(0)
        from repro.algorithms import FedAvg, Moon, RFedAvgPlus
        from repro.fl.trainer import run_federated

        accs = {}
        for name, alg in [
            ("fedavg", FedAvg()),
            ("moon", Moon(mu=1.0)),
            ("rfedavg+", RFedAvgPlus(lam=LAMBDA)),
        ]:
            history = run_federated(
                alg, fed, model_builder("mlp")(fed, 0), silo_config(rounds=40, eval_every=4)
            )
            accs[name] = history.tail_mean_accuracy(3)
        return accs

    accs = once(run)
    banner("Extension — contrastive (MOON) vs distributional (rFedAvg+) alignment")
    for name, acc in accs.items():
        report(f"{name:10s} acc={acc:.4f}")
    # Both feature-space methods must be competitive with FedAvg.
    assert accs["rfedavg+"] >= accs["fedavg"] - 0.05
    assert accs["moon"] >= 0.5 * accs["fedavg"]
