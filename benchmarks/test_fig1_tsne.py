"""Figure 1 — feature visualization of FedAvg, IID vs non-IID.

Paper: t-SNE of last-FC features from 3 clients after FedAvg training;
IID clients produce consistent per-class clusters, non-IID clients'
feature distributions disagree.  Here we train FedAvg on IID and
non-IID partitions, embed client features with our t-SNE, and verify
the quantitative version of the visual claim: the discrepancy between
clients' marginal feature distributions — the exact quantity the
regularizer targets (Eq. 2) — is far higher under the non-IID partition.
"""

import numpy as np

from benchmarks.common import banner, image_fed_builder, model_builder, silo_config, report
from repro.algorithms import FedAvg
from repro.analysis.tsne import client_marginal_discrepancy, tsne
from repro.fl.trainer import run_federated
from repro.nn.serialization import set_flat_params


def _client_features(similarity: float):
    fed = image_fed_builder("synth_cifar", 8, similarity)(0)
    config = silo_config(rounds=25, eval_every=25)
    alg = FedAvg()
    model_fn = model_builder("mlp")(fed, 0)
    run_federated(alg, fed, model_fn, config)
    model = model_fn()
    set_flat_params(model, alg.global_params)
    model.eval()
    feats, labels = [], []
    for shard in fed.clients[:3]:
        feats.append(model.features.forward(shard.x))
        labels.append(shard.y)
    return feats, labels


def test_fig1_feature_discrepancy(once):
    def run():
        iid_feats, _iid_labels = _client_features(1.0)
        non_feats, non_labels = _client_features(0.0)
        return (
            client_marginal_discrepancy(iid_feats),
            client_marginal_discrepancy(non_feats),
            non_feats,
            non_labels,
        )

    disc_iid, disc_non, non_feats, non_labels = once(run)
    banner("Fig. 1 — cross-client marginal feature discrepancy (linear MMD)")
    report(f"IID partition     : {disc_iid:.4f}")
    report(f"non-IID partition : {disc_non:.4f}")
    # The quantitative form of Fig. 1: non-IID clients' marginal
    # feature distributions disagree far more than IID clients'.
    assert disc_non > 2 * disc_iid

    # And the t-SNE embedding itself runs on the pooled features (the
    # coordinates the paper plots).
    pooled = np.vstack([f[:30] for f in non_feats])
    embedding = tsne(pooled, iterations=120, seed=0)
    assert embedding.shape == (pooled.shape[0], 2)
    assert np.all(np.isfinite(embedding))
    report(f"t-SNE embedded {embedding.shape[0]} non-IID client features")
