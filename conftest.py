"""Root pytest configuration (shared by tests/ and benchmarks/)."""
